"""Control-flow analyses: reachability, dominator tree, dominance frontiers.

The dominator tree uses the Cooper–Harvey–Kennedy "simple, fast dominance"
algorithm; frontiers use their frontier construction. mem2reg consumes both
to place pruned-SSA phi nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.module import BasicBlock, Function


def reachable_blocks(func: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in reverse postorder."""
    if not func.blocks:
        return []
    visited: Set[int] = set()
    postorder: List[BasicBlock] = []

    # Iterative DFS (recursion would overflow on long block chains).
    stack: List[tuple] = [(func.entry, iter(func.entry.successors()))]
    visited.add(id(func.entry))
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder


class DominatorTree:
    """Immediate-dominator tree over the reachable CFG of a function."""

    def __init__(self, func: Function) -> None:
        self.function = func
        self.rpo = reachable_blocks(func)
        self._rpo_index: Dict[int, int] = {id(b): i for i, b in enumerate(self.rpo)}
        self.idom: Dict[int, BasicBlock] = {}
        self._children: Dict[int, List[BasicBlock]] = {id(b): [] for b in self.rpo}
        self._compute()

    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        idom: Dict[int, Optional[BasicBlock]] = {id(b): None for b in self.rpo}
        idom[id(entry)] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                preds = [p for p in block.predecessors()
                         if id(p) in self._rpo_index and idom[id(p)] is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom[id(block)] is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        for block in self.rpo:
            dom = idom[id(block)]
            assert dom is not None, f"unreachable block {block.name} in RPO"
            self.idom[id(block)] = dom
            if block is not self.rpo[0]:
                self._children[id(dom)].append(block)

    def _intersect(self, b1: BasicBlock, b2: BasicBlock,
                   idom: Dict[int, Optional[BasicBlock]]) -> BasicBlock:
        f1, f2 = b1, b2
        while f1 is not f2:
            while self._rpo_index[id(f1)] > self._rpo_index[id(f2)]:
                f1 = idom[id(f1)]  # type: ignore[assignment]
            while self._rpo_index[id(f2)] > self._rpo_index[id(f1)]:
                f2 = idom[id(f2)]  # type: ignore[assignment]
        return f1

    def immediate_dominator(self, block: BasicBlock) -> BasicBlock:
        return self.idom[id(block)]

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children[id(block)])

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        entry = self.rpo[0]
        node = b
        while True:
            if node is a:
                return True
            if node is entry:
                return False
            node = self.idom[id(node)]

    def dominance_frontiers(self) -> Dict[int, Set[int]]:
        """Map from block id to the set of block ids in its frontier."""
        frontiers: Dict[int, Set[int]] = {id(b): set() for b in self.rpo}
        for block in self.rpo:
            preds = [p for p in block.predecessors() if id(p) in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[id(block)]:
                    frontiers[id(runner)].add(id(block))
                    runner = self.idom[id(runner)]
        return frontiers

    def blocks_by_id(self) -> Dict[int, BasicBlock]:
        return {id(b): b for b in self.rpo}
