"""Module / Function / BasicBlock containers for the repro IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import IRError
from repro.ir import types as ty
from repro.ir.instructions import Branch, Instruction, Phi
from repro.ir.values import Argument, GlobalVariable, Value


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated():
            raise IRError(
                f"block {self.name} already has a terminator; cannot append {inst.opcode}")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None
        inst.drop_all_references()

    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator()

    @property
    def terminator(self) -> Instruction:
        if not self.is_terminated():
            raise IRError(f"block {self.name} has no terminator")
        return self.instructions[-1]

    # -- CFG -----------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        if not self.is_terminated():
            return []
        return self.terminator.successors()  # type: ignore[attr-defined]

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def phis(self) -> List[Phi]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def ref(self) -> str:
        return f"%{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name}: {len(self.instructions)} insts>"


class Function(Value):
    """A function definition (with blocks) or declaration (intrinsic)."""

    def __init__(self, name: str, function_type: ty.FunctionType,
                 parent: Optional["Module"] = None,
                 param_names: Optional[Sequence[str]] = None) -> None:
        super().__init__(function_type, name)
        self.function_type = function_type
        self.parent = parent
        names = list(param_names) if param_names else [
            f"arg{i}" for i in range(len(function_type.param_types))]
        if len(names) != len(function_type.param_types):
            raise IRError("param name/type count mismatch")
        self.args: List[Argument] = [
            Argument(t, n, i)
            for i, (t, n) in enumerate(zip(function_type.param_types, names))
        ]
        self.blocks: List[BasicBlock] = []
        #: Intrinsics (print_int, malloc, ...) are declarations handled
        #: directly by the execution engines.
        self.is_intrinsic = False
        self._next_name = 0

    @property
    def return_type(self) -> ty.Type:
        return self.function_type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "", before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(name or self.unique_name("bb"), self)
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        """Remove a block: detach its instructions and fix phi edges."""
        for succ in block.successors():
            for phi in succ.phis():
                try:
                    phi.remove_incoming(block)
                except IRError:
                    pass
        for inst in list(block.instructions):
            block.remove(inst)
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, prefix: str = "t") -> str:
        self._next_name += 1
        return f"{prefix}{self._next_name}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} {self.function_type}>"


class Module:
    """Top-level IR container: functions, globals and named struct types."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.structs: Dict[str, ty.StructType] = {}

    def add_function(self, name: str, function_type: ty.FunctionType,
                     param_names: Optional[Sequence[str]] = None) -> Function:
        if name in self.functions:
            raise IRError(f"function {name} already defined")
        func = Function(name, function_type, self, param_names)
        self.functions[name] = func
        return func

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name}") from None

    def add_global(self, var: GlobalVariable) -> GlobalVariable:
        if var.name in self.globals:
            raise IRError(f"global {var.name} already defined")
        self.globals[var.name] = var
        return var

    def add_struct(self, struct: ty.StructType) -> ty.StructType:
        if struct.name in self.structs:
            raise IRError(f"struct {struct.name} already defined")
        self.structs[struct.name] = struct
        return struct

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def __str__(self) -> str:
        from repro.ir.printer import format_module
        return format_module(self)
