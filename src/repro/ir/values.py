"""Value hierarchy of the repro IR: constants, arguments, globals.

Instructions (which are also values) live in :mod:`repro.ir.instructions`;
functions and modules in :mod:`repro.ir.module`.

Use-def chains are maintained eagerly: every :class:`User` records its
operands, and every :class:`Value` records the users that reference it.
LLFI relies on these chains to restrict injection to instructions whose
results are actually used (paper §IV: "the LLVM compiler will automatically
identify the def-use chain of an instruction").
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.errors import IRError
from repro.ir import types as ty

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.instructions import Instruction


class Value:
    """Anything that can be an operand: constants, arguments, globals,
    functions and instruction results."""

    def __init__(self, type_: ty.Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        self._uses: List["Use"] = []

    # -- use-def chain -----------------------------------------------------
    @property
    def uses(self) -> List["Use"]:
        return list(self._uses)

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def users(self) -> Iterator["User"]:
        for use in self._uses:
            yield use.user

    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every user of ``self`` to reference ``new`` instead."""
        if new is self:
            return
        for use in list(self._uses):
            use.user._set_operand(use.index, new)

    def _add_use(self, use: "Use") -> None:
        self._uses.append(use)

    def _remove_use(self, use: "Use") -> None:
        self._uses.remove(use)

    # -- printing ----------------------------------------------------------
    def ref(self) -> str:
        """How this value is written when used as an operand."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.type} {self.ref()}>"


class Use:
    """One operand slot of a user: (user, index) referencing a value."""

    __slots__ = ("user", "index", "value")

    def __init__(self, user: "User", index: int, value: Value) -> None:
        self.user = user
        self.index = index
        self.value = value


class User(Value):
    """A value that references other values as operands."""

    def __init__(self, type_: ty.Type, operands: List[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self._operands: List[Use] = []
        for i, op in enumerate(operands):
            use = Use(self, i, op)
            self._operands.append(use)
            op._add_use(use)

    @property
    def operands(self) -> List[Value]:
        return [use.value for use in self._operands]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index].value

    def _set_operand(self, index: int, value: Value) -> None:
        use = self._operands[index]
        use.value._remove_use(use)
        use.value = value
        value._add_use(use)

    def set_operand(self, index: int, value: Value) -> None:
        self._set_operand(index, value)

    def _append_operand(self, value: Value) -> None:
        use = Use(self, len(self._operands), value)
        self._operands.append(use)
        value._add_use(use)

    def drop_all_references(self) -> None:
        """Detach from operands (used when deleting instructions)."""
        for use in self._operands:
            use.value._remove_use(use)
        self._operands = []


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------

class Constant(Value):
    """Base class for immediate values."""

    def ref(self) -> str:
        raise NotImplementedError


class ConstantInt(Constant):
    """Integer constant, stored as a Python int in the *signed* range of its
    type. ``value`` outside the representable range wraps (two's complement),
    matching LLVM constant folding semantics."""

    def __init__(self, type_: ty.IntType, value: int) -> None:
        if not isinstance(type_, ty.IntType):
            raise IRError(f"ConstantInt requires an integer type, got {type_}")
        super().__init__(type_)
        self.value = wrap_signed(value, type_.bits)

    @property
    def unsigned(self) -> int:
        return self.value & self.type.max_unsigned  # type: ignore[attr-defined]

    def ref(self) -> str:
        if self.type.is_integer(1):
            return "true" if self.value else "false"
        return str(self.value)


class ConstantDouble(Constant):
    def __init__(self, value: float) -> None:
        super().__init__(ty.DOUBLE)
        self.value = float(value)

    def ref(self) -> str:
        return f"{self.value!r}"


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    def __init__(self, type_: ty.PointerType) -> None:
        if not type_.is_pointer():
            raise IRError("null constant requires a pointer type")
        super().__init__(type_)

    def ref(self) -> str:
        return "null"


class ConstantUndef(Constant):
    """An undefined value (used for e.g. uninitialized phi inputs)."""

    def ref(self) -> str:
        return "undef"


class ConstantArray(Constant):
    """Array initializer for globals."""

    def __init__(self, type_: ty.ArrayType, elements: List[Constant]) -> None:
        if len(elements) != type_.count:
            raise IRError(
                f"array initializer has {len(elements)} elements, type wants {type_.count}")
        super().__init__(type_)
        self.elements = list(elements)

    def ref(self) -> str:
        inner = ", ".join(f"{e.type} {e.ref()}" for e in self.elements)
        return f"[{inner}]"


class ConstantStruct(Constant):
    """Struct initializer for globals."""

    def __init__(self, type_: ty.StructType, fields: List[Constant]) -> None:
        if len(fields) != type_.num_fields:
            raise IRError(
                f"struct initializer has {len(fields)} fields, type wants {type_.num_fields}")
        super().__init__(type_)
        self.fields = list(fields)

    def ref(self) -> str:
        inner = ", ".join(f"{f.type} {f.ref()}" for f in self.fields)
        return f"{{{inner}}}"


class ConstantZero(Constant):
    """Zero initializer of any sized type (like LLVM's ``zeroinitializer``)."""

    def ref(self) -> str:
        return "zeroinitializer"


class ConstantString(Constant):
    """A NUL-terminated byte string, typed ``[len+1 x i8]``."""

    def __init__(self, text: str) -> None:
        data = text.encode("utf-8") + b"\x00"
        super().__init__(ty.ArrayType(ty.I8, len(data)))
        self.data = data

    def ref(self) -> str:
        printable = self.data[:-1].decode("utf-8", errors="replace")
        return f'c"{printable}\\00"'


# ---------------------------------------------------------------------------
# Arguments and globals
# ---------------------------------------------------------------------------

class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: ty.Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level variable. Its *value* is a pointer to the storage
    (like LLVM: ``@g`` has type ``T*`` for a global of type ``T``)."""

    def __init__(self, name: str, value_type: ty.Type,
                 initializer: Optional[Constant] = None,
                 constant: bool = False) -> None:
        super().__init__(ty.PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer if initializer is not None else ConstantZero(value_type)
        self.is_constant = constant

    def ref(self) -> str:
        return f"@{self.name}"


# ---------------------------------------------------------------------------
# Bit-level helpers shared by constant folding, the interpreter and the
# fault-injection machinery.
# ---------------------------------------------------------------------------

def wrap_signed(value: int, bits: int) -> int:
    """Wrap a Python int to the signed two's-complement range of ``bits``."""
    mask = (1 << bits) - 1
    value &= mask
    if value >= (1 << (bits - 1)):
        value -= (1 << bits)
    return value


def wrap_unsigned(value: int, bits: int) -> int:
    """Wrap a Python int to the unsigned range of ``bits``."""
    return value & ((1 << bits) - 1)


def double_to_bits(value: float) -> int:
    """Reinterpret an IEEE-754 double as a 64-bit unsigned integer."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_double(bits: int) -> float:
    """Reinterpret a 64-bit unsigned integer as an IEEE-754 double."""
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]
