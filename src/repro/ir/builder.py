"""IRBuilder: convenience API for emitting instructions, LLVM-style.

The builder holds an insertion point (a basic block) and appends
instructions to it, returning the instruction as the SSA value it defines.
It also constant-folds trivially foldable operations the way Clang's
IRBuilder does, so the emitted IR is not littered with ``add 1, 2``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import IRError
from repro.ir import types as ty
from repro.ir.instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, FCmp, GetElementPtr, ICmp, Load,
    Phi, Ret, Select, Store, Unreachable,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import (
    ConstantDouble, ConstantInt, ConstantNull, Value, wrap_signed,
)


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block
        #: Line number stamped onto every emitted instruction (source map).
        self.current_line = 0

    # -- positioning ---------------------------------------------------------
    def set_insert_point(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise IRError("builder has no insertion point")
        return self.block.parent

    def _emit(self, inst):
        if self.block is None:
            raise IRError("builder has no insertion point")
        inst.source_line = self.current_line
        if inst.has_result() and not inst.name:
            inst.name = self.function.unique_name()
        self.block.append(inst)
        return inst

    # -- constants -----------------------------------------------------------
    def const_int(self, value: int, type_: ty.IntType = ty.I32) -> ConstantInt:
        return ConstantInt(type_, value)

    def const_double(self, value: float) -> ConstantDouble:
        return ConstantDouble(value)

    def const_null(self, type_: ty.PointerType) -> ConstantNull:
        return ConstantNull(type_)

    # -- arithmetic ----------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        folded = _fold_binop(opcode, lhs, rhs)
        if folded is not None:
            return folded
        return self._emit(BinaryOp(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("shl", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("ashr", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("lshr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fdiv", lhs, rhs, name)

    def neg(self, value: Value, name: str = "") -> Value:
        zero = ConstantInt(value.type, 0)  # type: ignore[arg-type]
        return self.binop("sub", zero, value, name)

    def fneg(self, value: Value, name: str = "") -> Value:
        return self.binop("fsub", ConstantDouble(0.0), value, name)

    def not_(self, value: Value, name: str = "") -> Value:
        all_ones = ConstantInt(value.type, -1)  # type: ignore[arg-type]
        return self.binop("xor", value, all_ones, name)

    # -- comparisons -----------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(ICmp(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(FCmp(predicate, lhs, rhs, name))

    # -- memory ----------------------------------------------------------------
    def alloca(self, type_: ty.Type, name: str = "") -> Alloca:
        return self._emit(Alloca(type_, name))

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(pointer, name))

    def store(self, value: Value, pointer: Value) -> Store:
        return self._emit(Store(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> Value:
        return self._emit(GetElementPtr(pointer, indices, name))

    # -- casts -------------------------------------------------------------------
    def cast(self, opcode: str, value: Value, dest: ty.Type, name: str = "") -> Value:
        if value.type is dest and opcode in ("bitcast",):
            return value
        if isinstance(value, ConstantInt) and opcode in ("trunc", "zext", "sext"):
            return _fold_int_cast(opcode, value, dest)  # type: ignore[arg-type]
        if isinstance(value, ConstantInt) and opcode in ("sitofp", "uitofp"):
            v = value.value if opcode == "sitofp" else value.unsigned
            return ConstantDouble(float(v))
        return self._emit(Cast(opcode, value, dest, name))

    def trunc(self, value: Value, dest: ty.Type, name: str = "") -> Value:
        return self.cast("trunc", value, dest, name)

    def zext(self, value: Value, dest: ty.Type, name: str = "") -> Value:
        return self.cast("zext", value, dest, name)

    def sext(self, value: Value, dest: ty.Type, name: str = "") -> Value:
        return self.cast("sext", value, dest, name)

    def sitofp(self, value: Value, name: str = "") -> Value:
        return self.cast("sitofp", value, ty.DOUBLE, name)

    def fptosi(self, value: Value, dest: ty.Type = ty.I32, name: str = "") -> Value:
        return self.cast("fptosi", value, dest, name)

    def bitcast(self, value: Value, dest: ty.Type, name: str = "") -> Value:
        return self.cast("bitcast", value, dest, name)

    # -- SSA / control flow --------------------------------------------------
    def phi(self, type_: ty.Type, name: str = "") -> Phi:
        """Phi nodes must precede non-phi instructions in their block."""
        if self.block is None:
            raise IRError("builder has no insertion point")
        inst = Phi(type_, name or self.function.unique_name())
        inst.source_line = self.current_line
        self.block.insert(self.block.first_non_phi_index(), inst)
        return inst

    def select(self, cond: Value, true_value: Value, false_value: Value,
               name: str = "") -> Value:
        return self._emit(Select(cond, true_value, false_value, name))

    def br(self, target: BasicBlock) -> Branch:
        return self._emit(Branch(target))

    def cond_br(self, condition: Value, if_true: BasicBlock,
                if_false: BasicBlock) -> Branch:
        return self._emit(Branch(condition=condition, if_true=if_true,
                                 if_false=if_false))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Call:
        return self._emit(Call(callee, args, name))


def _fold_binop(opcode: str, lhs: Value, rhs: Value) -> Optional[Value]:
    """Fold binary operations on two constants. Division by zero is left
    unfolded so it traps at runtime like the real thing."""
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        bits = lhs.type.bits  # type: ignore[attr-defined]
        a, b = lhs.value, rhs.value
        ua, ub = lhs.unsigned, rhs.unsigned
        if opcode == "add":
            return ConstantInt(lhs.type, a + b)  # type: ignore[arg-type]
        if opcode == "sub":
            return ConstantInt(lhs.type, a - b)  # type: ignore[arg-type]
        if opcode == "mul":
            return ConstantInt(lhs.type, a * b)  # type: ignore[arg-type]
        if opcode == "sdiv" and b != 0:
            return ConstantInt(lhs.type, _sdiv(a, b))  # type: ignore[arg-type]
        if opcode == "srem" and b != 0:
            return ConstantInt(lhs.type, _srem(a, b))  # type: ignore[arg-type]
        if opcode == "udiv" and b != 0:
            return ConstantInt(lhs.type, ua // ub)  # type: ignore[arg-type]
        if opcode == "urem" and b != 0:
            return ConstantInt(lhs.type, ua % ub)  # type: ignore[arg-type]
        if opcode == "and":
            return ConstantInt(lhs.type, a & b)  # type: ignore[arg-type]
        if opcode == "or":
            return ConstantInt(lhs.type, a | b)  # type: ignore[arg-type]
        if opcode == "xor":
            return ConstantInt(lhs.type, a ^ b)  # type: ignore[arg-type]
        if opcode == "shl" and 0 <= ub < bits:
            return ConstantInt(lhs.type, a << ub)  # type: ignore[arg-type]
        if opcode == "lshr" and 0 <= ub < bits:
            return ConstantInt(lhs.type, ua >> ub)  # type: ignore[arg-type]
        if opcode == "ashr" and 0 <= ub < bits:
            return ConstantInt(lhs.type, a >> ub)  # type: ignore[arg-type]
    if isinstance(lhs, ConstantDouble) and isinstance(rhs, ConstantDouble):
        a, b = lhs.value, rhs.value
        if opcode == "fadd":
            return ConstantDouble(a + b)
        if opcode == "fsub":
            return ConstantDouble(a - b)
        if opcode == "fmul":
            return ConstantDouble(a * b)
        if opcode == "fdiv" and b != 0.0:
            return ConstantDouble(a / b)
    return None


def _fold_int_cast(opcode: str, value: ConstantInt, dest: ty.Type) -> ConstantInt:
    dbits = dest.bits  # type: ignore[attr-defined]
    if opcode == "trunc":
        return ConstantInt(dest, wrap_signed(value.unsigned, dbits))  # type: ignore[arg-type]
    if opcode == "zext":
        return ConstantInt(dest, value.unsigned)  # type: ignore[arg-type]
    return ConstantInt(dest, value.value)  # type: ignore[arg-type]


def _sdiv(a: int, b: int) -> int:
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return a - _sdiv(a, b) * b
