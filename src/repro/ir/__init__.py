"""Typed SSA intermediate representation modeled on LLVM IR.

This is the level at which LLFI operates. The public surface:

* :mod:`repro.ir.types` — the type system (``ty.I32``, ``ty.DOUBLE``, ...)
* :class:`repro.ir.module.Module` / ``Function`` / ``BasicBlock``
* :class:`repro.ir.builder.IRBuilder` — instruction emission
* :func:`repro.ir.verifier.verify_module`
* :mod:`repro.ir.passes` — mem2reg and friends
"""

from repro.ir import types
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "types",
    "IRBuilder",
    "BasicBlock",
    "Function",
    "Module",
    "verify_function",
    "verify_module",
]
