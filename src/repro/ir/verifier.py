"""IR verifier: structural and SSA-dominance checks.

Run after the front end and after every optimization pass (the pass manager
does this automatically in checked mode). Catches the classic compiler bugs:
blocks without terminators, uses that don't dominate defs, phi edge
mismatches, type confusion that slipped past construction.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import VerificationError
from repro.ir.analysis import DominatorTree, reachable_blocks
from repro.ir.instructions import Branch, Call, Instruction, Phi, Ret
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Constant, GlobalVariable, Value


def verify_module(module: Module) -> None:
    errors: List[str] = []
    for func in module.functions.values():
        if func.is_declaration:
            continue
        errors.extend(_verify_function(func))
    if errors:
        raise VerificationError(
            f"module {module.name} failed verification:\n  " + "\n  ".join(errors))


def verify_function(func: Function) -> None:
    errors = _verify_function(func)
    if errors:
        raise VerificationError(
            f"function {func.name} failed verification:\n  " + "\n  ".join(errors))


def _verify_function(func: Function) -> List[str]:
    errors: List[str] = []
    where = f"in @{func.name}"

    if not func.blocks:
        return [f"{where}: defined function has no blocks"]

    block_set = {id(b) for b in func.blocks}

    for block in func.blocks:
        if not block.instructions:
            errors.append(f"{where}: block {block.name} is empty")
            continue
        if not block.is_terminated():
            errors.append(f"{where}: block {block.name} lacks a terminator")
            continue
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                errors.append(
                    f"{where}: instruction {inst.opcode} has wrong parent link")
            if inst.is_terminator() and i != len(block.instructions) - 1:
                errors.append(
                    f"{where}: terminator {inst.opcode} mid-block in {block.name}")
            if isinstance(inst, Phi) and i >= block.first_non_phi_index() \
                    and not isinstance(block.instructions[i], Phi):
                errors.append(f"{where}: phi after non-phi in {block.name}")
        term = block.terminator
        if isinstance(term, Branch):
            for target in term.targets:
                if id(target) not in block_set:
                    errors.append(
                        f"{where}: branch in {block.name} targets foreign block "
                        f"{target.name}")
        if isinstance(term, Ret):
            if func.return_type.is_void():
                if term.value is not None:
                    errors.append(f"{where}: ret with value in void function")
            elif term.value is None:
                errors.append(f"{where}: ret void in non-void function")
            elif term.value.type is not func.return_type:
                errors.append(
                    f"{where}: ret type {term.value.type} != {func.return_type}")

    # Phi edge consistency.
    for block in func.blocks:
        preds = [p for p in block.predecessors() if id(p) in block_set]
        pred_ids = {id(p) for p in preds}
        for phi in block.phis():
            seen: Set[int] = set()
            for value, inblock in phi.incoming:
                if id(inblock) not in pred_ids:
                    errors.append(
                        f"{where}: phi %{phi.name} has edge from non-predecessor "
                        f"{inblock.name}")
                if id(inblock) in seen:
                    errors.append(
                        f"{where}: phi %{phi.name} has duplicate edge from "
                        f"{inblock.name}")
                seen.add(id(inblock))
            missing = pred_ids - seen
            if missing:
                names = ", ".join(p.name for p in preds if id(p) in missing)
                errors.append(
                    f"{where}: phi %{phi.name} missing incoming for: {names}")

    if errors:
        return errors  # dominance check needs a sane CFG

    # SSA dominance: every use of an instruction result must be dominated
    # by its definition.
    reachable = {id(b) for b in reachable_blocks(func)}
    dt = DominatorTree(func)
    positions = {}
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, i)
    for block in func.blocks:
        if id(block) not in reachable:
            continue
        for i, inst in enumerate(block.instructions):
            for op_index, op in enumerate(inst.operands):
                if not isinstance(op, Instruction):
                    if not isinstance(op, (Constant, Argument, GlobalVariable)):
                        errors.append(
                            f"{where}: {inst.opcode} operand {op_index} is not a "
                            f"value ({type(op).__name__})")
                    continue
                if id(op) not in positions:
                    errors.append(
                        f"{where}: use of detached instruction %{op.name}")
                    continue
                def_block, def_pos = positions[id(op)]
                if id(def_block) not in reachable:
                    continue
                if isinstance(inst, Phi):
                    # Uses in phis must dominate the *incoming edge* source.
                    pred = inst.incoming[op_index][1]
                    if id(pred) in reachable and not dt.dominates(def_block, pred):
                        errors.append(
                            f"{where}: phi %{inst.name} operand %{op.name} does "
                            f"not dominate edge from {pred.name}")
                elif def_block is block:
                    if def_pos >= i:
                        errors.append(
                            f"{where}: %{op.name} used before definition in "
                            f"{block.name}")
                elif not dt.dominates(def_block, block):
                    errors.append(
                        f"{where}: definition of %{op.name} ({def_block.name}) "
                        f"does not dominate use in {block.name}")

    return errors
