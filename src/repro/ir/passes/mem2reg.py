"""mem2reg: promote allocas to SSA registers (pruned SSA construction).

This is the pass that gives the IR its "high-level" character: after it
runs, scalar local variables live in virtual registers connected by phi
nodes, exactly the state in which LLFI sees programs (Clang at -O1+ runs
mem2reg before anything else). Without it every local access would be a
load/store pair and the IR-vs-assembly instruction-count comparison
(paper Table IV) would be meaningless.

Algorithm: standard iterated-dominance-frontier phi placement over the
defining blocks of each promotable alloca, followed by a dominator-tree
renaming walk with per-variable value stacks.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.analysis import DominatorTree
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import ConstantUndef, Value


def promote_memory_to_registers(module: Module) -> int:
    """Promote all eligible allocas in every function. Returns the number
    of allocas promoted."""
    total = 0
    for func in module.defined_functions():
        total += _promote_function(func)
    return total


def _is_promotable(alloca: Alloca) -> bool:
    """An alloca is promotable when it holds a first-class value and is only
    ever directly loaded from or stored to (never has its address taken,
    indexed, or passed to a call)."""
    if not alloca.allocated_type.is_first_class():
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca \
                and user.value is not alloca:
            continue
        return False
    return True


def _promote_function(func: Function) -> int:
    allocas = [inst for inst in func.entry.instructions
               if isinstance(inst, Alloca) and _is_promotable(inst)]
    if not allocas:
        return 0

    dt = DominatorTree(func)
    frontiers = dt.dominance_frontiers()
    blocks_by_id = dt.blocks_by_id()
    reachable: Set[int] = set(blocks_by_id)

    # ---- phi placement ----------------------------------------------------
    # For each alloca, compute blocks containing stores (defs) and insert
    # phi nodes on the iterated dominance frontier. Pruning: skip blocks
    # where the variable is not live-in.
    live_in = _compute_live_in(func, allocas, reachable)

    phi_for: Dict[Tuple[int, int], Phi] = {}  # (alloca id, block id) -> phi
    for alloca in allocas:
        def_blocks: List[int] = []
        for use in alloca.uses:
            user = use.user
            if isinstance(user, Store) and user.parent is not None \
                    and id(user.parent) in reachable:
                def_blocks.append(id(user.parent))
        worklist = list(dict.fromkeys(def_blocks))
        placed: Set[int] = set()
        while worklist:
            bid = worklist.pop()
            for fid in frontiers.get(bid, ()):
                if fid in placed:
                    continue
                placed.add(fid)
                if id(alloca) not in live_in.get(fid, set()):
                    continue  # pruned: dead phi
                block = blocks_by_id[fid]
                phi = Phi(alloca.allocated_type,
                          func.unique_name(alloca.name or "v"))
                phi.source_line = alloca.source_line
                block.insert(0, phi)
                phi_for[(id(alloca), fid)] = phi
                worklist.append(fid)

    # ---- renaming -----------------------------------------------------------
    alloca_ids = {id(a): a for a in allocas}
    stacks: Dict[int, List[Value]] = {id(a): [] for a in allocas}
    to_delete: List[Instruction] = []
    visited: Set[int] = set()

    # Iterative dominator-tree DFS with explicit push/pop bookkeeping.
    def current(aid: int, alloca: Alloca) -> Value:
        stack = stacks[aid]
        if stack:
            return stack[-1]
        return ConstantUndef(alloca.allocated_type)

    work: List[Tuple[str, BasicBlock, List[int]]] = [("enter", func.entry, [])]
    while work:
        action, block, pushed = work.pop()
        if action == "exit":
            for aid in pushed:
                stacks[aid].pop()
            continue
        if id(block) in visited:
            continue
        visited.add(id(block))
        pushed_here: List[int] = []
        for inst in list(block.instructions):
            if isinstance(inst, Phi):
                owner = next((aid for (aid, bid), p in phi_for.items()
                              if p is inst and bid == id(block)), None)
                if owner is not None:
                    stacks[owner].append(inst)
                    pushed_here.append(owner)
            elif isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                aid = id(inst.pointer)
                inst.replace_all_uses_with(current(aid, alloca_ids[aid]))
                to_delete.append(inst)
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                aid = id(inst.pointer)
                stacks[aid].append(inst.value)
                pushed_here.append(aid)
                to_delete.append(inst)
        # Fill phi operands in successors.
        for succ in block.successors():
            for (aid, bid), phi in phi_for.items():
                if bid != id(succ):
                    continue
                phi.add_incoming(current(aid, alloca_ids[aid]), block)
        work.append(("exit", block, pushed_here))
        for child in dt.children(block):
            work.append(("enter", child, []))

    for inst in to_delete:
        inst.erase_from_parent()
    for alloca in allocas:
        if not alloca.is_used():
            alloca.erase_from_parent()
    return len(allocas)


def _compute_live_in(func: Function, allocas: List[Alloca],
                     reachable: Set[int]) -> Dict[int, Set[int]]:
    """Backward liveness of promotable allocas at block entry. Used to
    prune phis for variables that are dead on some frontier blocks."""
    alloca_ids = {id(a) for a in allocas}
    # use/def per block, in instruction order.
    upward_exposed: Dict[int, Set[int]] = {}
    killed: Dict[int, Set[int]] = {}
    for block in func.blocks:
        if id(block) not in reachable:
            continue
        ue: Set[int] = set()
        kill: Set[int] = set()
        for inst in block.instructions:
            if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                if id(inst.pointer) not in kill:
                    ue.add(id(inst.pointer))
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                kill.add(id(inst.pointer))
        upward_exposed[id(block)] = ue
        killed[id(block)] = kill

    live_in: Dict[int, Set[int]] = {bid: set() for bid in upward_exposed}
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            bid = id(block)
            if bid not in live_in:
                continue
            live_out: Set[int] = set()
            for succ in block.successors():
                live_out |= live_in.get(id(succ), set())
            new_in = upward_exposed[bid] | (live_out - killed[bid])
            if new_in != live_in[bid]:
                live_in[bid] = new_in
                changed = True
    return live_in
