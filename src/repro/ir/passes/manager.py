"""Pass manager: runs passes in order, optionally verifying after each."""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.ir.module import Module
from repro.ir.verifier import verify_module

Pass = Callable[[Module], int]


class PassManager:
    """Ordered pipeline of module passes.

    With ``verify_each=True`` (the default) the IR verifier runs after each
    pass, so a miscompiling pass is caught at the pass boundary rather than
    as a bizarre runtime difference between the two injectors.
    """

    def __init__(self, verify_each: bool = True) -> None:
        self._passes: List[Tuple[str, Pass]] = []
        self.verify_each = verify_each

    def add(self, name: str, pass_fn: Pass) -> "PassManager":
        self._passes.append((name, pass_fn))
        return self

    def run(self, module: Module) -> dict:
        """Run the pipeline; returns {pass name: change count}."""
        if self.verify_each:
            verify_module(module)
        report = {}
        for name, pass_fn in self._passes:
            report[name] = pass_fn(module)
            if self.verify_each:
                verify_module(module)
        if self._passes:
            # Passes rewrite instructions in place; compiled blocks from
            # any earlier execution of this module are now stale.
            from repro.vm.blockcache import invalidate_cache
            invalidate_cache(module)
        return report


def run_default_pipeline(module: Module, verify_each: bool = True) -> dict:
    """The standard -O1-ish pipeline both LLFI and the backend consume."""
    from repro.ir.passes.constfold import fold_constants
    from repro.ir.passes.dce import eliminate_dead_code
    from repro.ir.passes.inline import inline_functions
    from repro.ir.passes.mem2reg import promote_memory_to_registers
    from repro.ir.passes.simplifycfg import simplify_cfg

    pm = PassManager(verify_each=verify_each)
    pm.add("simplifycfg", simplify_cfg)
    pm.add("inline", inline_functions)
    pm.add("mem2reg", promote_memory_to_registers)
    pm.add("constfold", fold_constants)
    pm.add("dce", eliminate_dead_code)
    pm.add("simplifycfg2", simplify_cfg)
    pm.add("dce2", eliminate_dead_code)
    return pm.run(module)
