"""Function inlining.

Small callees are cloned into their call sites, matching what Clang's -O2
does to helpers like ``max2``/``max3``. Without this, call-frame traffic
(argument moves, prologue/epilogue push/pop) dominates the assembly-level
instruction counts of call-heavy benchmarks and distorts the IR-vs-assembly
comparison the reproduction is about.

Mechanics: the call's block is split at the call; the callee body is cloned
with arguments substituted; ``ret`` instructions become branches to the
continuation, with a phi merging return values when there are several.
Cloned entry-block allocas are hoisted into the caller's entry block (the
backend and mem2reg only look there).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, FCmp, GetElementPtr, ICmp,
    Instruction, Load, Phi, Ret, Select, Store, Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Value


def inline_functions(module: Module, max_insts: int = 48,
                     max_blocks: int = 8, rounds: int = 3) -> int:
    """Inline eligible call sites module-wide. Returns sites inlined."""
    total = 0
    for _ in range(rounds):
        changed = 0
        for func in list(module.defined_functions()):
            changed += _inline_in_function(func, max_insts, max_blocks)
        total += changed
        if not changed:
            break
    return total


def _eligible(callee: Function, caller: Function, max_insts: int,
              max_blocks: int) -> bool:
    if callee.is_declaration or callee.is_intrinsic:
        return False
    if callee is caller:
        return False
    if len(callee.blocks) > max_blocks:
        return False
    count = 0
    for inst in callee.instructions():
        count += 1
        if count > max_insts:
            return False
        # Direct recursion never shrinks; skip.
        if isinstance(inst, Call) and inst.callee is callee:
            return False
    return True


def _inline_in_function(func: Function, max_insts: int,
                        max_blocks: int) -> int:
    inlined = 0
    # Snapshot call sites first; inlining mutates the block list.
    sites: List[Call] = [
        inst for inst in func.instructions()
        if isinstance(inst, Call)
        and _eligible(inst.callee, func, max_insts, max_blocks)
    ]
    for call in sites:
        if call.parent is None:
            continue  # removed by an earlier inline in this pass
        _inline_site(func, call)
        inlined += 1
    return inlined


def _inline_site(caller: Function, call: Call) -> None:
    callee = call.callee
    block = call.parent
    assert block is not None
    index = block.instructions.index(call)

    # 1. Split: instructions after the call move to the continuation block.
    cont = BasicBlock(caller.unique_name(f"{callee.name}.exit"), caller)
    tail = block.instructions[index + 1:]
    del block.instructions[index + 1:]
    for inst in tail:
        inst.parent = cont
        cont.instructions.append(inst)
    # Phi edges in successors now come from `cont`.
    for succ in cont.successors():
        for phi in succ.phis():
            phi._blocks = [cont if b is block else b for b in phi._blocks]

    # 2. Clone the callee. Blocks are visited in reverse postorder so that
    #    every non-phi use sees its definition already cloned (phi incoming
    #    values are filled afterwards, covering back edges).
    from repro.ir.analysis import reachable_blocks

    order = reachable_blocks(callee)
    vmap: Dict[int, Value] = {}
    bmap: Dict[int, BasicBlock] = {}
    for arg, actual in zip(callee.args, call.args):
        vmap[id(arg)] = actual
    clones: List[BasicBlock] = []
    for cblock in order:
        nb = BasicBlock(caller.unique_name(f"{callee.name}.{cblock.name}"),
                        caller)
        bmap[id(cblock)] = nb
        clones.append(nb)
    rets: List[Tuple[Optional[Value], BasicBlock]] = []
    phi_fixups: List[Tuple[Phi, Phi]] = []  # (original, clone)
    for cblock in order:
        nb = bmap[id(cblock)]
        for inst in cblock.instructions:
            if isinstance(inst, Ret):
                value = inst.value
                rets.append((value, nb))
                continue  # terminator added in step 4
            clone = _clone_inst(inst, vmap, bmap, caller)
            vmap[id(inst)] = clone
            nb.instructions.append(clone)
            clone.parent = nb
            if isinstance(inst, Phi):
                phi_fixups.append((inst, clone))
    # Phi operands may reference forward values; fill them now.
    for original, clone in phi_fixups:
        for value, pred in original.incoming:
            if id(pred) in bmap:  # edges from unreachable blocks vanish
                clone.add_incoming(_mapped(value, vmap), bmap[id(pred)])

    # 3. Wire control flow: call block branches to the cloned entry;
    #    each cloned ret branches to the continuation.
    entry_clone = bmap[id(callee.entry)]
    br = Branch(entry_clone)
    br.parent = block
    block.instructions.append(br)
    for value, nb in rets:
        rbr = Branch(cont)
        rbr.parent = nb
        nb.instructions.append(rbr)

    # 4. Return value.
    if call.has_result():
        if not rets:
            raise IRError(f"inlining {callee.name}: no return values")
        mapped = [( _mapped(v, vmap) if v is not None else None, nb)
                  for v, nb in rets]
        if len(mapped) == 1:
            result: Value = mapped[0][0]  # type: ignore[assignment]
        else:
            phi = Phi(call.type, caller.unique_name(f"{callee.name}.ret"))
            cont.instructions.insert(0, phi)
            phi.parent = cont
            for v, nb in mapped:
                phi.add_incoming(v, nb)  # type: ignore[arg-type]
            result = phi
        call.replace_all_uses_with(result)

    # 5. Remove the call, splice blocks after the call block.
    block.instructions.remove(call)
    call.parent = None
    call.drop_all_references()
    at = caller.blocks.index(block) + 1
    caller.blocks[at:at] = clones + [cont]

    # 6. Hoist cloned entry allocas into the caller entry block.
    if block is not caller.entry or entry_clone is not caller.entry:
        for nb in clones:
            for inst in [i for i in nb.instructions if isinstance(i, Alloca)]:
                nb.instructions.remove(inst)
                inst.parent = caller.entry
                caller.entry.instructions.insert(0, inst)


def _mapped(value: Value, vmap: Dict[int, Value]) -> Value:
    return vmap.get(id(value), value)


def _clone_inst(inst: Instruction, vmap: Dict[int, Value],
                bmap: Dict[int, BasicBlock], caller: Function) -> Instruction:
    m = lambda v: _mapped(v, vmap)  # noqa: E731
    name = caller.unique_name(inst.name or "inl")
    clone: Instruction
    if isinstance(inst, BinaryOp):
        clone = BinaryOp(inst.opcode, m(inst.lhs), m(inst.rhs), name)
    elif isinstance(inst, ICmp):
        clone = ICmp(inst.predicate, m(inst.lhs), m(inst.rhs), name)
    elif isinstance(inst, FCmp):
        clone = FCmp(inst.predicate, m(inst.lhs), m(inst.rhs), name)
    elif isinstance(inst, Alloca):
        clone = Alloca(inst.allocated_type, name)
    elif isinstance(inst, Load):
        clone = Load(m(inst.pointer), name)
    elif isinstance(inst, Store):
        clone = Store(m(inst.value), m(inst.pointer))
    elif isinstance(inst, GetElementPtr):
        clone = GetElementPtr(m(inst.pointer),
                              [m(i) for i in inst.indices], name)
    elif isinstance(inst, Cast):
        clone = Cast(inst.opcode, m(inst.value), inst.type, name)
    elif isinstance(inst, Select):
        clone = Select(m(inst.condition), m(inst.true_value),
                       m(inst.false_value), name)
    elif isinstance(inst, Phi):
        clone = Phi(inst.type, name)
        # incoming edges are filled after all blocks are cloned
    elif isinstance(inst, Branch):
        if inst.is_conditional:
            clone = Branch(condition=m(inst.condition),
                           if_true=bmap[id(inst.targets[0])],
                           if_false=bmap[id(inst.targets[1])])
        else:
            clone = Branch(bmap[id(inst.targets[0])])
    elif isinstance(inst, Unreachable):
        clone = Unreachable()
    elif isinstance(inst, Call):
        clone = Call(inst.callee, [m(a) for a in inst.args], name)
    else:
        raise IRError(f"cannot clone {inst.opcode}")
    clone.source_line = inst.source_line
    return clone
