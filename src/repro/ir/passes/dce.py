"""Dead code elimination.

Removes instructions with no users and no side effects, iterating until no
more can be removed (removing a user can make its operands dead in turn).
Side-effecting instructions — stores, calls, terminators — are always kept;
loads are treated as pure (our memory model has no volatile or I/O-mapped
loads; all I/O goes through call intrinsics).
"""

from __future__ import annotations

from repro.ir.instructions import Call, Instruction, Store
from repro.ir.module import Function, Module


def _has_side_effects(inst: Instruction) -> bool:
    if inst.is_terminator():
        return True
    if isinstance(inst, (Store, Call)):
        return True
    return False


def eliminate_dead_code(module: Module) -> int:
    """Remove trivially dead instructions module-wide. Returns count removed."""
    total = 0
    for func in module.defined_functions():
        total += _dce_function(func)
    return total


def _dce_function(func: Function) -> int:
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in reversed(list(block.instructions)):
                if _has_side_effects(inst):
                    continue
                if not inst.is_used():
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed
