"""Optimization passes over the repro IR.

The default pipeline (:func:`run_default_pipeline`) mirrors what the paper
implies by "compile the programs with the LLVM compiler, with the same
standard optimizations enabled": promote memory to SSA registers, fold
constants, prune dead code, and tidy the CFG. Both LLFI's input IR and the
backend's input IR go through the same pipeline, which is the paper's
fairness requirement.
"""

from repro.ir.passes.manager import PassManager, run_default_pipeline
from repro.ir.passes.mem2reg import promote_memory_to_registers
from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.simplifycfg import simplify_cfg

__all__ = [
    "PassManager",
    "run_default_pipeline",
    "promote_memory_to_registers",
    "fold_constants",
    "eliminate_dead_code",
    "simplify_cfg",
]
