"""CFG simplification.

Three cleanups, iterated to a fixed point:

1. remove blocks unreachable from the entry,
2. fold conditional branches on constant conditions into unconditional ones,
3. merge a block into its unique predecessor when that predecessor has a
   single successor (straight-line merge).

All phi edges are kept consistent throughout.
"""

from __future__ import annotations

from typing import List

from repro.ir.analysis import reachable_blocks
from repro.ir.instructions import Branch, Phi
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import ConstantInt


def simplify_cfg(module: Module) -> int:
    total = 0
    for func in module.defined_functions():
        total += _simplify_function(func)
    return total


def _simplify_function(func: Function) -> int:
    changes = 0
    changed = True
    while changed:
        changed = False
        changed |= _fold_constant_branches(func)
        changed |= _remove_unreachable(func)
        changed |= _merge_straightline(func)
        if changed:
            changes += 1
    return changes


def _fold_constant_branches(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        if not block.is_terminated():
            continue
        term = block.terminator
        if isinstance(term, Branch) and term.is_conditional \
                and isinstance(term.condition, ConstantInt):
            taken = term.targets[0] if term.condition.value else term.targets[1]
            dead = term.targets[1] if term.condition.value else term.targets[0]
            if dead is not taken:
                for phi in dead.phis():
                    try:
                        phi.remove_incoming(block)
                    except Exception:
                        pass
            block.remove(term)
            block.append(Branch(taken))
            changed = True
    return changed


def _remove_unreachable(func: Function) -> bool:
    live = {id(b) for b in reachable_blocks(func)}
    dead = [b for b in func.blocks if id(b) not in live]
    for block in dead:
        func.remove_block(block)
    return bool(dead)


def _merge_straightline(func: Function) -> bool:
    changed = False
    for block in list(func.blocks):
        if block is func.entry:
            continue
        preds = block.predecessors()
        if len(preds) != 1:
            continue
        pred = preds[0]
        if pred is block or len(pred.successors()) != 1:
            continue
        if block.phis():
            # Single predecessor: phis are trivially replaceable.
            for phi in block.phis():
                phi.replace_all_uses_with(phi.incoming_for_block(pred))
                phi.erase_from_parent()
        # Splice instructions into the predecessor.
        pred_term = pred.terminator
        pred.remove(pred_term)
        for inst in list(block.instructions):
            block.instructions.remove(inst)
            inst.parent = pred
            pred.instructions.append(inst)
        # Phi edges in successors must now name `pred`.
        for succ in pred.successors():
            for phi in succ.phis():
                phi._blocks = [pred if b is block else b for b in phi._blocks]
        func.blocks.remove(block)
        block.parent = None
        changed = True
    return changed
