"""Constant folding and trivial algebraic simplification.

Runs to a fixed point within each function. Folds binary ops, compares,
casts and selects whose operands are constants, plus a few identities
(x+0, x*1, x*0, x-x) that commonly appear after mem2reg.
"""

from __future__ import annotations

from typing import Optional

from repro.ir import types as ty
from repro.ir.builder import _fold_binop, _fold_int_cast, _sdiv, _srem
from repro.ir.instructions import (
    BinaryOp, Cast, FCmp, ICmp, Instruction, Select,
)
from repro.ir.module import Function, Module
from repro.ir.values import ConstantDouble, ConstantInt, Value


def fold_constants(module: Module) -> int:
    """Fold constant expressions module-wide. Returns number of
    instructions folded away."""
    total = 0
    for func in module.defined_functions():
        total += _fold_function(func)
    return total


def _fold_function(func: Function) -> int:
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in list(block.instructions):
                replacement = _try_fold(inst)
                if replacement is not None:
                    inst.replace_all_uses_with(replacement)
                    inst.erase_from_parent()
                    folded += 1
                    changed = True
    return folded


def _try_fold(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, BinaryOp):
        folded = _fold_binop(inst.opcode, inst.lhs, inst.rhs)
        if folded is not None:
            return folded
        return _fold_identity(inst)
    if isinstance(inst, ICmp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            return ConstantInt(ty.I1, int(_icmp(inst.predicate, lhs, rhs)))
    if isinstance(inst, FCmp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantDouble) and isinstance(rhs, ConstantDouble):
            return ConstantInt(ty.I1, int(_fcmp(inst.predicate, lhs.value, rhs.value)))
    if isinstance(inst, Cast):
        v = inst.value
        if isinstance(v, ConstantInt):
            if inst.opcode in ("trunc", "zext", "sext"):
                return _fold_int_cast(inst.opcode, v, inst.type)
            if inst.opcode == "sitofp":
                return ConstantDouble(float(v.value))
            if inst.opcode == "uitofp":
                return ConstantDouble(float(v.unsigned))
        if isinstance(v, ConstantDouble) and inst.opcode in ("fptosi", "fptoui"):
            bits = inst.type.bits  # type: ignore[attr-defined]
            try:
                as_int = int(v.value)
            except (OverflowError, ValueError):
                return None
            if inst.opcode == "fptosi":
                return ConstantInt(inst.type, as_int)  # type: ignore[arg-type]
            return ConstantInt(inst.type, as_int & ((1 << bits) - 1))  # type: ignore[arg-type]
    if isinstance(inst, Select):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            return inst.true_value if cond.value else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
    return None


def _fold_identity(inst: BinaryOp) -> Optional[Value]:
    lhs, rhs = inst.lhs, inst.rhs
    rconst = rhs if isinstance(rhs, ConstantInt) else None
    lconst = lhs if isinstance(lhs, ConstantInt) else None
    op = inst.opcode
    if op == "add":
        if rconst is not None and rconst.value == 0:
            return lhs
        if lconst is not None and lconst.value == 0:
            return rhs
    elif op == "sub":
        if rconst is not None and rconst.value == 0:
            return lhs
        if lhs is rhs:
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
    elif op == "mul":
        for c, other in ((rconst, lhs), (lconst, rhs)):
            if c is not None:
                if c.value == 1:
                    return other
                if c.value == 0:
                    return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
    elif op in ("and", "or"):
        if lhs is rhs:
            return lhs
        if rconst is not None:
            if op == "and" and rconst.value == 0:
                return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
            if op == "or" and rconst.value == 0:
                return lhs
    elif op == "xor":
        if lhs is rhs:
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
        if rconst is not None and rconst.value == 0:
            return lhs
    elif op in ("shl", "lshr", "ashr"):
        if rconst is not None and rconst.value == 0:
            return lhs
    elif op in ("sdiv", "udiv"):
        if rconst is not None and rconst.value == 1:
            return lhs
    return None


def _icmp(pred: str, lhs: ConstantInt, rhs: ConstantInt) -> bool:
    a, b = lhs.value, rhs.value
    ua, ub = lhs.unsigned, rhs.unsigned
    return {
        "eq": a == b, "ne": a != b,
        "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
        "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
    }[pred]


def _fcmp(pred: str, a: float, b: float) -> bool:
    if a != a or b != b:  # NaN: only the unordered predicate holds
        return pred == "une"
    return {
        "oeq": a == b, "one": a != b, "une": a != b,
        "olt": a < b, "ole": a <= b, "ogt": a > b, "oge": a >= b,
    }[pred]
