"""Instruction set of the repro IR.

The opcodes mirror the subset of LLVM IR that matters for the paper:

* binary arithmetic/logic (``add`` ... ``frem``)
* comparisons (``icmp``, ``fcmp``)
* memory (``alloca``, ``load``, ``store``, ``getelementptr``)
* control flow (``br``, ``ret``, ``call``, ``unreachable``)
* SSA plumbing (``phi``, ``select``)
* casts (``trunc``, ``zext``, ``sext``, ``fptosi``, ``fptoui``, ``sitofp``,
  ``uitofp``, ``bitcast``, ``ptrtoint``, ``inttoptr``)

The *category* of each opcode (arithmetic / cast / cmp / load / other) is the
paper's Table III and lives in :mod:`repro.fi.categories`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from repro.errors import IRError
from repro.ir import types as ty
from repro.ir.values import User, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock, Function


# Opcode groups ---------------------------------------------------------------

INT_BINARY_OPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)
FLOAT_BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
BINARY_OPS = INT_BINARY_OPS + FLOAT_BINARY_OPS

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
#: Ordered predicates are false when either operand is NaN; ``une`` is
#: the one unordered predicate (true on NaN) — it is what C's ``!=`` and
#: floating-point truthiness lower to.
FCMP_PREDICATES = ("oeq", "one", "une", "olt", "ole", "ogt", "oge")

CAST_OPS = (
    "trunc", "zext", "sext", "fptosi", "fptoui", "sitofp", "uitofp",
    "bitcast", "ptrtoint", "inttoptr",
)

#: Casts that convert between integer and floating point domains. Per the
#: paper (Table I row 5), only these correspond to real assembly
#: instructions; the others are erased by the backend.
INT_FP_CONVERSION_CASTS = ("fptosi", "fptoui", "sitofp", "uitofp")


class Instruction(User):
    """Base class. An instruction lives in exactly one basic block."""

    opcode: str = "<abstract>"

    def __init__(self, type_: ty.Type, operands: List[Value], name: str = "") -> None:
        super().__init__(type_, operands, name)
        self.parent: Optional["BasicBlock"] = None
        #: Source line in the MiniC program, when known (for mapping results
        #: back to source code, the motivation for high-level injection).
        self.source_line: int = 0

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def is_terminator(self) -> bool:
        return False

    def has_result(self) -> bool:
        """True when the instruction produces a value (a "destination
        register" in the paper's terminology — the injection target)."""
        return not self.type.is_void()

    def erase_from_parent(self) -> None:
        if self.parent is None:
            raise IRError("instruction is not in a block")
        self.parent.remove(self)

    def __str__(self) -> str:
        from repro.ir.printer import format_instruction
        return format_instruction(self)


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic. Shift amounts share the operand type."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in BINARY_OPS:
            raise IRError(f"unknown binary opcode {opcode!r}")
        if lhs.type is not rhs.type:
            raise IRError(f"{opcode}: operand type mismatch ({lhs.type} vs {rhs.type})")
        if opcode in FLOAT_BINARY_OPS:
            if not lhs.type.is_double():
                raise IRError(f"{opcode} requires double operands, got {lhs.type}")
        else:
            if not lhs.type.is_integer():
                raise IRError(f"{opcode} requires integer operands, got {lhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class ICmp(Instruction):
    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise IRError(f"unknown icmp predicate {predicate!r}")
        if lhs.type is not rhs.type:
            raise IRError(f"icmp: operand type mismatch ({lhs.type} vs {rhs.type})")
        if not (lhs.type.is_integer() or lhs.type.is_pointer()):
            raise IRError(f"icmp requires integer or pointer operands, got {lhs.type}")
        super().__init__(ty.I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class FCmp(Instruction):
    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in FCMP_PREDICATES:
            raise IRError(f"unknown fcmp predicate {predicate!r}")
        if not (lhs.type.is_double() and rhs.type.is_double()):
            raise IRError("fcmp requires double operands")
        super().__init__(ty.I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class Alloca(Instruction):
    """Stack allocation; result is a pointer into the function's frame."""

    opcode = "alloca"

    def __init__(self, allocated_type: ty.Type, name: str = "") -> None:
        if allocated_type.is_void() or allocated_type.is_function():
            raise IRError(f"cannot alloca {allocated_type}")
        super().__init__(ty.PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class Load(Instruction):
    opcode = "load"

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not pointer.type.is_pointer():
            raise IRError(f"load requires a pointer operand, got {pointer.type}")
        pointee = pointer.type.pointee  # type: ignore[attr-defined]
        if not pointee.is_first_class():
            raise IRError(f"cannot load a value of type {pointee}")
        super().__init__(pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)


class Store(Instruction):
    """No result (the paper excludes stores from injection for exactly this
    reason: no destination register)."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        if not pointer.type.is_pointer():
            raise IRError(f"store requires a pointer, got {pointer.type}")
        if pointer.type.pointee is not value.type:  # type: ignore[attr-defined]
            raise IRError(
                f"store type mismatch: storing {value.type} through {pointer.type}")
        super().__init__(ty.VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)


class GetElementPtr(Instruction):
    """Pointer address computation (LLVM ``getelementptr``).

    Operand 0 is the base pointer; the remaining operands are indices.
    The first index scales the base by whole pointee sizes; subsequent
    indices step *into* arrays and structs. Struct indices must be
    ``ConstantInt``.
    """

    opcode = "getelementptr"

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "") -> None:
        if not pointer.type.is_pointer():
            raise IRError(f"GEP requires a pointer base, got {pointer.type}")
        if not indices:
            raise IRError("GEP requires at least one index")
        result = _gep_result_type(pointer.type, indices)
        super().__init__(ty.PointerType(result), [pointer, *indices], name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


def _gep_result_type(ptr_type: ty.Type, indices: Sequence[Value]) -> ty.Type:
    from repro.ir.values import ConstantInt

    current: ty.Type = ptr_type.pointee  # type: ignore[attr-defined]
    for idx in indices[1:]:
        if current.is_array():
            current = current.element  # type: ignore[attr-defined]
        elif current.is_struct():
            if not isinstance(idx, ConstantInt):
                raise IRError("struct GEP index must be a constant int")
            current = current.field_type(idx.value)  # type: ignore[attr-defined]
        else:
            raise IRError(f"cannot index into type {current}")
    for idx in indices:
        if not idx.type.is_integer():
            raise IRError(f"GEP index must be an integer, got {idx.type}")
    return current


class Cast(Instruction):
    def __init__(self, opcode: str, value: Value, dest_type: ty.Type, name: str = "") -> None:
        if opcode not in CAST_OPS:
            raise IRError(f"unknown cast opcode {opcode!r}")
        _check_cast(opcode, value.type, dest_type)
        super().__init__(dest_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.operand(0)

    def is_int_fp_conversion(self) -> bool:
        return self.opcode in INT_FP_CONVERSION_CASTS


def _check_cast(opcode: str, src: ty.Type, dst: ty.Type) -> None:
    def err() -> IRError:
        return IRError(f"invalid {opcode} from {src} to {dst}")

    if opcode == "trunc":
        if not (src.is_integer() and dst.is_integer()
                and src.bits > dst.bits):  # type: ignore[attr-defined]
            raise err()
    elif opcode in ("zext", "sext"):
        if not (src.is_integer() and dst.is_integer()
                and src.bits < dst.bits):  # type: ignore[attr-defined]
            raise err()
    elif opcode in ("fptosi", "fptoui"):
        if not (src.is_double() and dst.is_integer()):
            raise err()
    elif opcode in ("sitofp", "uitofp"):
        if not (src.is_integer() and dst.is_double()):
            raise err()
    elif opcode == "bitcast":
        if not (src.is_pointer() and dst.is_pointer()):
            raise err()
    elif opcode == "ptrtoint":
        if not (src.is_pointer() and dst.is_integer(64)):
            raise err()
    elif opcode == "inttoptr":
        if not (src.is_integer(64) and dst.is_pointer()):
            raise err()


class Phi(Instruction):
    """SSA phi node. Incoming values are (value, block) pairs; values are
    stored as operands so use-def chains stay consistent."""

    opcode = "phi"

    def __init__(self, type_: ty.Type, name: str = "") -> None:
        if not type_.is_first_class():
            raise IRError(f"phi of non-first-class type {type_}")
        super().__init__(type_, [], name)
        self._blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise IRError(
                f"phi incoming type mismatch: {value.type} vs {self.type}")
        self._append_operand(value)
        self._blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self._blocks))

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise IRError(f"phi has no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self._blocks):
            if pred is block:
                use = self._operands.pop(i)
                use.value._remove_use(use)
                for j, u in enumerate(self._operands):
                    u.index = j
                self._blocks.pop(i)
                return
        raise IRError(f"phi has no incoming edge from {block.name}")


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` — conditional move."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value,
                 name: str = "") -> None:
        if not cond.type.is_integer(1):
            raise IRError("select condition must be i1")
        if true_value.type is not false_value.type:
            raise IRError("select arm type mismatch")
        super().__init__(true_value.type, [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


class Branch(Instruction):
    """Unconditional (``br label %b``) or conditional
    (``br i1 %c, label %t, label %f``) branch. Targets are block references,
    not operands (they are not values), matching how the backend sees them."""

    opcode = "br"

    def __init__(self, target: "BasicBlock" = None,  # type: ignore[assignment]
                 condition: Optional[Value] = None,
                 if_true: Optional["BasicBlock"] = None,
                 if_false: Optional["BasicBlock"] = None) -> None:
        if condition is not None:
            if not condition.type.is_integer(1):
                raise IRError("branch condition must be i1")
            if if_true is None or if_false is None:
                raise IRError("conditional branch needs two targets")
            super().__init__(ty.VOID, [condition])
            self.targets: List["BasicBlock"] = [if_true, if_false]
        else:
            if target is None:
                raise IRError("unconditional branch needs a target")
            super().__init__(ty.VOID, [])
            self.targets = [target]

    def is_terminator(self) -> bool:
        return True

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 1

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise IRError("unconditional branch has no condition")
        return self.operand(0)

    def successors(self) -> List["BasicBlock"]:
        return list(self.targets)

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.targets = [new if t is old else t for t in self.targets]


class Ret(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(ty.VOID, [value] if value is not None else [])

    def is_terminator(self) -> bool:
        return True

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class Unreachable(Instruction):
    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(ty.VOID, [])

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> List["BasicBlock"]:
        return []


class Call(Instruction):
    """Direct call. Operand 0.. are the arguments; the callee is stored as a
    reference (functions are not SSA operands in this IR)."""

    opcode = "call"

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = "") -> None:
        ftype = callee.function_type
        expected = ftype.param_types
        if ftype.vararg:
            if len(args) < len(expected):
                raise IRError(
                    f"call to {callee.name}: expected at least {len(expected)} args, "
                    f"got {len(args)}")
        elif len(args) != len(expected):
            raise IRError(
                f"call to {callee.name}: expected {len(expected)} args, got {len(args)}")
        for i, (arg, want) in enumerate(zip(args, expected)):
            if arg.type is not want:
                raise IRError(
                    f"call to {callee.name}: arg {i} has type {arg.type}, wants {want}")
        super().__init__(ftype.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands
