"""IR interpreter: executes repro-IR modules directly.

This is the runtime under LLFI. It mirrors LLVM IR semantics with the
following deliberate deviations, chosen so that both execution engines
behave identically under injected faults (the paper's comparison would be
confounded otherwise):

* shift counts are masked to the operand width (x86 semantics) instead of
  producing poison;
* ``sdiv INT_MIN, -1`` and division by zero trap (x86 ``#DE``) instead of
  being undefined;
* out-of-range ``fptosi`` produces the x86 "integer indefinite"
  (``0x8000...``) instead of poison.

Faults are delivered through an optional :class:`InterpHook`: after an
instruction with a result executes, the hook may replace the result value
(LLFI's injection hook lives in :mod:`repro.fi.llfi`). Activation tracking
is a single identity comparison on the operand-read path.

Cast and binary-op semantics dispatch through precomputed per-opcode
tables (module-level function dicts) instead of if/elif chains.

The interpreter supports ``capture()``/``restore()`` of its complete state
(see :mod:`repro.vm.snapshot`).  Because the simulated call stack is the
Python call stack, a snapshot stores one :class:`~repro.vm.snapshot.FrameState`
per live frame; ``restore()`` + ``run()`` rebuilds the recursion and
continues at the captured instruction boundary, retiring the exact stream
a cold run would from there — which is what lets fault-injection trials
skip their fault-free prefix.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.ir import types as irty
from repro.ir.instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, FCmp, GetElementPtr, ICmp,
    Instruction, Load, Phi, Ret, Select, Store, Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import (
    Argument, ConstantDouble, ConstantInt, ConstantNull, ConstantUndef,
    GlobalVariable, Value, wrap_signed,
)
from repro.obs import get_recorder
from repro.vm.io import OutputBuffer
from repro.vm.memory import BumpAllocator, STACK_TOP
from repro.vm.result import ExecutionResult
from repro.vm.snapshot import (
    FrameState, MachineSnapshot, capture_memory, restore_memory,
    restore_memory_decoded,
)
from repro.vm.blockcache import UNCOMPILABLE, cache_for, compile_ir_segment
from repro.vm.traps import HangTimeout, Trap, TrapKind

MASK64 = (1 << 64) - 1


class InterpHook:
    """Base class for fault-injection hooks into the interpreter."""

    #: Set to True by hooks that will never act again this run (e.g. an
    #: injection hook after it fired).  The block compiler uses this to
    #: run the post-injection suffix on the compiled path.
    finished = False

    #: True for hooks whose ``on_result`` mutates nothing but the hook
    #: itself (pure observers, e.g. candidate counters): every compiled
    #: span is safe for them regardless of its candidate count.
    observer = False

    def on_result(self, inst: Instruction, value, interp: "IRInterpreter"):
        """Called after each value-producing instruction; the return value
        replaces the instruction's result."""
        return value

    def compiled_span_ok(self, ncand: int) -> bool:
        """May a compiled block that will invoke this hook ``ncand``
        times run without scalar fallback?  Override for hooks that can
        bound when they next act (injection hooks: the block is safe
        while its candidate count cannot reach the trigger index)."""
        return self.observer


@dataclass
class Frame:
    function: Function
    values: Dict[int, object] = field(default_factory=dict)
    saved_sp: int = 0
    #: When fault injection poisons an SSA value in this frame, this is the
    #: poisoned instruction; reading it marks the fault activated.
    poison_inst: Optional[Instruction] = None
    #: Position of the instruction this frame is currently executing, kept
    #: up to date only while checkpoint recording is on.  For a suspended
    #: frame this is its pending ``call`` instruction.
    resume_block: Optional[BasicBlock] = None
    resume_index: int = 0


class IRInterpreter:
    def __init__(self, module: Module,
                 max_instructions: int = 50_000_000,
                 max_call_depth: int = 400,
                 hook: Optional[InterpHook] = None,
                 hook_filter: Optional[frozenset] = None,
                 checkpoint_stride: int = 0,
                 checkpoint_sink: Optional[Callable[[MachineSnapshot], None]]
                 = None,
                 template: Optional["IRInterpreter"] = None,
                 memory=None,
                 compile_blocks: bool = True) -> None:
        if (template is None) != (memory is None):
            raise ReproError("template and memory must be given together")
        self.module = module
        self.max_instructions = max_instructions
        self.max_call_depth = max_call_depth
        self.hook = hook
        #: When set, the hook only fires for instructions whose id() is in
        #: this set (fault injectors pass their candidate set here).
        self.hook_filter = hook_filter
        # Simulated calls consume several Python frames each; make sure the
        # simulated call-depth limit is reached before CPython's.
        needed = max_call_depth * 10 + 2000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        self.output = OutputBuffer()
        self.executed = 0
        self.call_depth = 0
        #: Frame currently executing (hooks use this to poison SSA values).
        self.current_frame: Optional[Frame] = None
        #: Set by the hook when it poisons a value; cleared never (one
        #: injection per run). Read by the fault-injection campaign.
        self.fault_activated = False
        #: Checkpoint recording: every ``checkpoint_stride`` retired
        #: instructions (0 = off), pass a MachineSnapshot to the sink.
        self._checkpoint_stride = checkpoint_stride
        self._checkpoint_sink = checkpoint_sink
        self._next_checkpoint = checkpoint_stride
        self._recording = checkpoint_sink is not None and checkpoint_stride > 0
        #: Live frame stack, innermost last (for capture()).
        self._frames: List[Frame] = []
        #: Set by restore(): frame states run() rebuilds instead of calling
        #: the entry function.
        self._resume: Optional[Sequence[FrameState]] = None
        self._global_addr: Dict[int, int] = {}
        if template is not None:
            # Share the immutable global-address map and take the caller's
            # memory — this is how batched lanes fork cheaply from one
            # decoded image (see repro.vm.batch).
            self._global_addr = template._global_addr
            self.memory = memory
            self.heap = BumpAllocator()
            self._stack_sp = STACK_TOP
        else:
            self.memory, self.heap, self._stack_sp = self._load_globals()
        #: Threaded-code execution (see repro.vm.blockcache).  An armed
        #: boundary tap (checkpoint recording) always takes the scalar
        #: path, so recording runs never compile.
        self._compiling = compile_blocks and not self._recording
        self._block_cache = cache_for(module) if self._compiling else None
        #: Runtime counters: blocks executed compiled vs blocks that fell
        #: back to the scalar loop while compilation was on.
        self.compiled_blocks = 0
        self.fallback_blocks = 0
        #: Memoised hook_filter-disjointness per compiled segment key.
        self._hookfree: Dict[tuple, bool] = {}
        #: Memoised hooked-variant blocks per segment key (the filter is
        #: fixed for an engine's lifetime; the shared cache keys hooked
        #: variants by filter *value* so same-category runs share them).
        self._hooked: Dict[tuple, object] = {}
        self._filter_key = (frozenset(hook_filter)
                            if hook_filter is not None else None)
        self._dispatch: Dict[type, Callable] = {
            BinaryOp: self._exec_binop,
            ICmp: self._exec_icmp,
            FCmp: self._exec_fcmp,
            Load: self._exec_load,
            Store: self._exec_store,
            GetElementPtr: self._exec_gep,
            Cast: self._exec_cast,
            Select: self._exec_select,
            Alloca: self._exec_alloca,
            Call: self._exec_call,
        }

    # -- program image -----------------------------------------------------
    def _load_globals(self):
        from repro.vm.image import build_global_image

        memory, addrs = build_global_image(self.module)
        self._global_addr = addrs
        return memory, BumpAllocator(), STACK_TOP

    # -- snapshot / restore -------------------------------------------------
    def capture(self, include_memory: bool = True) -> MachineSnapshot:
        """Freeze complete interpreter state at the current instruction
        boundary (each live frame's ``resume_*`` position, maintained while
        recording, names the instruction about to execute / pending).

        ``include_memory=False`` leaves the memory images empty — for
        batched forks, which carry memory separately as a COW fork."""
        frames = tuple(
            FrameState(f.function, f.resume_block, f.resume_index,
                       dict(f.values), f.saved_sp)
            for f in self._frames)
        return MachineSnapshot(
            executed=self.executed,
            call_depth=self.call_depth,
            memory=capture_memory(self.memory) if include_memory else (),
            heap=self.heap.checkpoint(),
            output=self.output.checkpoint(),
            state={"frames": frames, "stack_sp": self._stack_sp})

    def restore(self, snapshot: MachineSnapshot,
                memory_images: Optional[Sequence[bytes]] = None,
                skip_memory: bool = False) -> None:
        """Load a snapshot; the next run() rebuilds the captured call stack
        and continues from its boundary instead of entering ``main``.  The
        snapshot is not consumed — any number of interpreters (over the
        same module instance) may restore from the same one.

        ``memory_images`` — pre-expanded full-size region bytes (from
        :meth:`repro.vm.snapshot.CheckpointStore.decoded_memory`) shared
        across restores of this snapshot; bit-identical to the span-wise
        restore, just cheaper.

        ``skip_memory`` — leave ``self.memory`` untouched (batched lanes
        already hold a COW fork of the right bytes)."""
        if skip_memory:
            pass
        elif memory_images is not None:
            restore_memory_decoded(self.memory, snapshot.memory,
                                   memory_images)
        else:
            restore_memory(self.memory, snapshot.memory)
        self.heap.restore(snapshot.heap)
        self.output.restore(snapshot.output)
        self.executed = snapshot.executed
        self.call_depth = 0
        self._stack_sp = snapshot.state["stack_sp"]
        self._resume = snapshot.state["frames"]

    def _take_checkpoint(self) -> None:
        self._checkpoint_sink(self.capture())
        self._next_checkpoint = self.executed + self._checkpoint_stride

    # -- top level -----------------------------------------------------------
    def run(self, entry: str = "main") -> ExecutionResult:
        try:
            if self._resume is not None:
                frames = self._resume
                self._resume = None
                result = self._resume_depth(frames, 0)
            else:
                func = self.module.get_function(entry)
                result = self._call_function(func, [])
            outcome = ExecutionResult("ok", None, self.output.text(),
                                      self.executed, result)
        except Trap as trap:
            outcome = ExecutionResult("trap", trap, self.output.text(),
                                      self.executed)
        except HangTimeout:
            outcome = ExecutionResult("hang", None, self.output.text(),
                                      self.executed)
        return self._record_run(outcome)

    def _record_run(self, outcome: ExecutionResult) -> ExecutionResult:
        # Observability: one recorder call per whole-program run — never
        # per instruction — so the disabled path costs a no-op call.
        rec = get_recorder()
        if rec.enabled:
            rec.incr("vm.ir.runs")
            rec.incr("vm.ir.instructions", outcome.instructions)
            if self.compiled_blocks:
                rec.incr("vm.ir.compiled_blocks", self.compiled_blocks)
            if self.fallback_blocks:
                rec.incr("vm.ir.fallback_blocks", self.fallback_blocks)
            if outcome.hung:
                rec.incr("vm.ir.hang_budget_trips")
            elif outcome.crashed:
                rec.incr("vm.ir.traps")
        return outcome

    def _resume_depth(self, frames: Sequence[FrameState], depth: int):
        """Rebuild the captured recursion from ``depth`` inward and continue
        execution.  Suspended frames complete their pending call with the
        inner frame's return value — applying the hook exactly as the cold
        run would — then continue at the next instruction."""
        fs = frames[depth]
        self.call_depth += 1
        # Copy the values dict: the snapshot is shared across trials and a
        # resumed frame mutates its values.  Seed resume_block/resume_index
        # from the frame state so a capture() during resumed execution (a
        # batched fork) sees valid positions for still-suspended outer
        # frames; _run_frame overwrites them once the frame is live again.
        frame = Frame(fs.function, values=dict(fs.values),
                      saved_sp=fs.saved_sp,
                      resume_block=fs.block, resume_index=fs.index)
        prev_frame = self.current_frame
        self.current_frame = frame
        self._frames.append(frame)
        try:
            if depth + 1 < len(frames):
                inner = self._resume_depth(frames, depth + 1)
                inst = fs.block.instructions[fs.index]  # the pending call
                if inst.has_result():
                    hook = self.hook
                    if hook is not None and (self.hook_filter is None
                                             or id(inst) in self.hook_filter):
                        inner = hook.on_result(inst, inner, self)
                    frame.values[id(inst)] = inner
                # A call is never a block terminator, so index+1 is valid.
                return self._run_frame(frame, start_block=fs.block,
                                       start_index=fs.index + 1)
            return self._run_frame(frame, start_block=fs.block,
                                   start_index=fs.index)
        finally:
            self._frames.pop()
            self.current_frame = prev_frame
            self._stack_sp = frame.saved_sp
            self.call_depth -= 1

    # -- calls -----------------------------------------------------------------
    def _call_function(self, func: Function, args: List[object]):
        if func.is_intrinsic:
            return self._call_intrinsic(func, args)
        if func.is_declaration:
            raise ReproError(f"call to undefined function {func.name}")
        if self.call_depth >= self.max_call_depth:
            raise Trap(TrapKind.CALL_DEPTH, func.name)
        self.call_depth += 1
        frame = Frame(func, saved_sp=self._stack_sp)
        for arg, value in zip(func.args, args):
            frame.values[id(arg)] = value
        prev_frame = self.current_frame
        self.current_frame = frame
        self._frames.append(frame)
        try:
            return self._run_frame(frame)
        finally:
            self._frames.pop()
            self.current_frame = prev_frame
            self._stack_sp = frame.saved_sp
            self.call_depth -= 1

    def _call_intrinsic(self, func: Function, args: List[object]):
        name = func.name
        if name == "print_int":
            self.output.print_int(args[0])  # type: ignore[arg-type]
            return None
        if name == "print_long":
            self.output.print_long(args[0])  # type: ignore[arg-type]
            return None
        if name == "print_double":
            self.output.print_double(args[0])  # type: ignore[arg-type]
            return None
        if name == "print_char":
            self.output.print_char(args[0])  # type: ignore[arg-type]
            return None
        if name == "print_str":
            self.output.print_str(self.memory.read_cstring(args[0]))  # type: ignore[arg-type]
            return None
        if name == "malloc":
            return self.heap.malloc(args[0])  # type: ignore[arg-type]
        if name == "free":
            self.heap.free(args[0])  # type: ignore[arg-type]
            return None
        raise ReproError(f"unknown intrinsic {name}")

    # -- the main loop -----------------------------------------------------------
    def _run_frame(self, frame: Frame,
                   start_block: Optional[BasicBlock] = None,
                   start_index: int = 0):
        if start_block is None:
            block = frame.function.entry
            skip = 0
        else:
            # Resuming mid-block: the phi batch (if any) already ran before
            # the snapshot was taken, so jump straight to start_index.
            block = start_block
            skip = start_index
        prev_block: Optional[BasicBlock] = None
        hook = self.hook
        hook_filter = self.hook_filter
        values = frame.values
        recording = self._recording
        while True:
            insts = block.instructions
            if skip:
                index = skip
                skip = 0
            else:
                # Evaluate all phis for this (prev -> block) edge at once.
                index = 0
                if insts and isinstance(insts[0], Phi):
                    phi_values = []
                    while index < len(insts) and isinstance(insts[index], Phi):
                        phi = insts[index]
                        incoming = phi.incoming_for_block(prev_block)  # type: ignore[arg-type]
                        phi_values.append((phi, self._value_of(incoming, frame)))
                        index += 1
                    for phi, value in phi_values:
                        self.executed += 1
                        if hook is not None and (hook_filter is None
                                                 or id(phi) in hook_filter):
                            value = hook.on_result(phi, value, self)
                        values[id(phi)] = value
                    if self.executed > self.max_instructions:
                        raise HangTimeout(self.executed)
            if self._compiling:
                # Threaded-code fast path (repro.vm.blockcache): run the
                # rest of the block as compiled closures when no observer
                # could tell the difference.  An armed hook may still run
                # compiled through the hooked variant (inline hook calls)
                # when it declares the span safe — otherwise fall back to
                # the scalar loop below for this block.
                if frame.poison_inst is None or self.fault_activated:
                    cache = self._block_cache
                    key = (id(insts), index)
                    cb = cache.ir.get(key)
                    if cb is None:
                        cb = compile_ir_segment(cache, insts, index,
                                                self._global_addr)
                        cache.ir[key] = (cb if cb is not None
                                         else UNCOMPILABLE)
                    if cb is not None and cb is not UNCOMPILABLE:
                        if hook is None or hook.finished:
                            pass  # plain variant is exact
                        elif hook_filter is not None:
                            ok = self._hookfree.get(key)
                            if ok is None:
                                ok = hook_filter.isdisjoint(cb.ids)
                                self._hookfree[key] = ok
                            if not ok:
                                hcb = self._hooked.get(key)
                                if hcb is None:
                                    gkey = (key[0], key[1],
                                            self._filter_key)
                                    hcb = cache.ir.get(gkey)
                                    if hcb is None:
                                        hcb = compile_ir_segment(
                                            cache, insts, index,
                                            self._global_addr,
                                            hook_filter)
                                        if hcb is None:
                                            hcb = UNCOMPILABLE
                                        cache.ir[gkey] = hcb
                                    self._hooked[key] = hcb
                                if (hcb is not UNCOMPILABLE
                                        and hook.compiled_span_ok(
                                            hcb.ncand)):
                                    cb = hcb
                                else:
                                    cb = None
                        else:
                            cb = None
                        if cb is not None:
                            self.compiled_blocks += 1
                            for step in cb.steps:
                                step(self, frame, values)
                            t = cb.term(self, frame, values)
                            if type(t) is tuple:  # (_RET, value)
                                return t[1]
                            prev_block = block
                            block = t
                            continue
                self.fallback_blocks += 1
            while index < len(insts):
                if recording:
                    # Checkpoints land only at non-phi boundaries, so a
                    # resumed frame never needs the (prev -> block) edge.
                    frame.resume_block = block
                    frame.resume_index = index
                    if self.executed >= self._next_checkpoint:
                        self._take_checkpoint()
                inst = insts[index]
                self.executed += 1
                if self.executed > self.max_instructions:
                    raise HangTimeout(self.executed)
                cls = type(inst)
                if cls is Branch:
                    if inst.is_conditional:
                        cond = self._value_of(inst.condition, frame)
                        target = inst.targets[0] if cond else inst.targets[1]
                    else:
                        target = inst.targets[0]
                    prev_block = block
                    block = target
                    break
                if cls is Ret:
                    if inst.value is not None:
                        return self._value_of(inst.value, frame)
                    return None
                if cls is Unreachable:
                    raise Trap(TrapKind.BAD_JUMP, "unreachable executed")
                handler = self._dispatch.get(cls)
                if handler is None:
                    raise ReproError(f"cannot interpret {inst.opcode}")
                result = handler(inst, frame)
                if inst.has_result():
                    if hook is not None and (hook_filter is None
                                             or id(inst) in hook_filter):
                        result = hook.on_result(inst, result, self)
                    values[id(inst)] = result
                index += 1
            else:
                raise ReproError(
                    f"block {block.name} fell through without terminator")

    # -- operand evaluation -------------------------------------------------------
    def _value_of(self, operand: Value, frame: Frame):
        if isinstance(operand, Instruction):
            if operand is frame.poison_inst:
                self.fault_activated = True
            return frame.values[id(operand)]
        if isinstance(operand, ConstantInt):
            return operand.value
        if isinstance(operand, ConstantDouble):
            return operand.value
        if isinstance(operand, ConstantNull):
            return 0
        if isinstance(operand, Argument):
            if operand is frame.poison_inst:
                self.fault_activated = True
            return frame.values[id(operand)]
        if isinstance(operand, GlobalVariable):
            return self._global_addr[id(operand)]
        if isinstance(operand, ConstantUndef):
            return 0.0 if operand.type.is_double() else 0
        raise ReproError(f"cannot evaluate operand {type(operand).__name__}")

    def global_address(self, g: GlobalVariable) -> int:
        return self._global_addr[id(g)]

    # -- instruction semantics -----------------------------------------------------
    def _exec_binop(self, inst: BinaryOp, frame: Frame):
        a = self._value_of(inst.lhs, frame)
        b = self._value_of(inst.rhs, frame)
        op = inst.opcode
        handler = _FLOAT_BINOPS.get(op)
        if handler is not None:
            return handler(a, b)
        handler = _INT_BINOPS.get(op)
        if handler is None:
            raise ReproError(f"unknown binop {op}")
        return handler(a, b, inst.type.bits)  # type: ignore[attr-defined]

    def _exec_icmp(self, inst: ICmp, frame: Frame):
        a = self._value_of(inst.lhs, frame)
        b = self._value_of(inst.rhs, frame)
        if inst.lhs.type.is_pointer():
            # pointers are stored unsigned
            ua, ub = a & MASK64, b & MASK64
            return int({
                "eq": ua == ub, "ne": ua != ub,
                "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
                "slt": wrap_signed(ua, 64) < wrap_signed(ub, 64),
                "sle": wrap_signed(ua, 64) <= wrap_signed(ub, 64),
                "sgt": wrap_signed(ua, 64) > wrap_signed(ub, 64),
                "sge": wrap_signed(ua, 64) >= wrap_signed(ub, 64),
            }[inst.predicate])
        bits = inst.lhs.type.bits  # type: ignore[attr-defined]
        mask = (1 << bits) - 1
        ua, ub = a & mask, b & mask
        sa, sb = wrap_signed(ua, bits), wrap_signed(ub, bits)
        return int({
            "eq": ua == ub, "ne": ua != ub,
            "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
            "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
        }[inst.predicate])

    def _exec_fcmp(self, inst: FCmp, frame: Frame):
        a = self._value_of(inst.lhs, frame)
        b = self._value_of(inst.rhs, frame)
        if a != a or b != b:
            # Unordered: only ``une`` holds; ordered predicates are false.
            return int(inst.predicate == "une")
        return int({
            "oeq": a == b, "one": a != b, "une": a != b,
            "olt": a < b, "ole": a <= b, "ogt": a > b, "oge": a >= b,
        }[inst.predicate])

    def _exec_load(self, inst: Load, frame: Frame):
        addr = self._value_of(inst.pointer, frame) & MASK64
        t = inst.type
        if t.is_double():
            return self.memory.read_double(addr)
        if t.is_pointer():
            return self.memory.read_int(addr, 8, signed=False)
        if t.is_integer(1):
            return 1 if self.memory.read_int(addr, 1, signed=False) else 0
        return self.memory.read_int(addr, t.size, signed=True)

    def _exec_store(self, inst: Store, frame: Frame):
        value = self._value_of(inst.value, frame)
        addr = self._value_of(inst.pointer, frame) & MASK64
        t = inst.value.type
        if t.is_double():
            self.memory.write_double(addr, value)
        elif t.is_pointer():
            self.memory.write_int(addr, 8, value & MASK64)
        elif t.is_integer(1):
            self.memory.write_int(addr, 1, 1 if value else 0)
        else:
            self.memory.write_int(addr, t.size, value & ((1 << (t.size * 8)) - 1))
        return None

    def _exec_gep(self, inst: GetElementPtr, frame: Frame):
        addr = self._value_of(inst.pointer, frame) & MASK64
        current = inst.pointer.type.pointee  # type: ignore[attr-defined]
        indices = inst.indices
        first = self._value_of(indices[0], frame)
        addr = (addr + first * current.size) & MASK64
        for idx_val in indices[1:]:
            if current.is_array():
                idx = self._value_of(idx_val, frame)
                current = current.element
                addr = (addr + idx * current.size) & MASK64
            else:  # struct
                idx = idx_val.value  # type: ignore[attr-defined]
                addr = (addr + current.field_offset(idx)) & MASK64
                current = current.field_type(idx)
        return addr

    def _exec_cast(self, inst: Cast, frame: Frame):
        handler = _CAST_OPS.get(inst.opcode)
        if handler is None:
            raise ReproError(f"unknown cast {inst.opcode}")
        return handler(inst, self._value_of(inst.value, frame))

    def _exec_select(self, inst: Select, frame: Frame):
        cond = self._value_of(inst.condition, frame)
        return self._value_of(inst.true_value if cond else inst.false_value,
                              frame)

    def _exec_alloca(self, inst: Alloca, frame: Frame):
        t = inst.allocated_type
        size = max(t.size, 1)
        align = max(t.alignment, 8)
        sp = self._stack_sp - size
        sp -= sp % align
        stack = self.memory.region_named("stack")
        if sp < stack.base:
            raise Trap(TrapKind.STACK_OVERFLOW, frame.function.name)
        self._stack_sp = sp
        # Zero the slot: frames are reused and stale bytes would make runs
        # depend on execution history.
        self.memory.write_bytes(sp, b"\x00" * size)
        return sp

    def _exec_call(self, inst: Call, frame: Frame):
        args = [self._value_of(a, frame) for a in inst.args]
        return self._call_function(inst.callee, args)


# -- arithmetic helpers ---------------------------------------------------------

def _ib_add(a: int, b: int, bits: int) -> int:
    return wrap_signed(a + b, bits)


def _ib_sub(a: int, b: int, bits: int) -> int:
    return wrap_signed(a - b, bits)


def _ib_mul(a: int, b: int, bits: int) -> int:
    return wrap_signed(a * b, bits)


def _ib_sdiv(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIVIDE_ERROR, "sdiv by zero")
    if a == -(1 << (bits - 1)) and b == -1:
        raise Trap(TrapKind.DIVIDE_ERROR, "sdiv overflow")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _ib_srem(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIVIDE_ERROR, "srem by zero")
    if a == -(1 << (bits - 1)) and b == -1:
        raise Trap(TrapKind.DIVIDE_ERROR, "srem overflow")
    q = abs(a) // abs(b)
    q = -q if (a < 0) != (b < 0) else q
    return a - q * b


def _ib_udiv(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIVIDE_ERROR, "udiv by zero")
    mask = (1 << bits) - 1
    return wrap_signed((a & mask) // (b & mask), bits)


def _ib_urem(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap(TrapKind.DIVIDE_ERROR, "urem by zero")
    mask = (1 << bits) - 1
    return wrap_signed((a & mask) % (b & mask), bits)


def _ib_and(a: int, b: int, bits: int) -> int:
    return wrap_signed(a & b, bits)


def _ib_or(a: int, b: int, bits: int) -> int:
    return wrap_signed(a | b, bits)


def _ib_xor(a: int, b: int, bits: int) -> int:
    return wrap_signed(a ^ b, bits)


def _shift_count(b: int, bits: int) -> int:
    # x86 masks shift counts to the operand width.
    return (b & ((1 << bits) - 1)) & (63 if bits == 64 else 31)


def _ib_shl(a: int, b: int, bits: int) -> int:
    return wrap_signed(a << _shift_count(b, bits), bits)


def _ib_lshr(a: int, b: int, bits: int) -> int:
    return wrap_signed((a & ((1 << bits) - 1)) >> _shift_count(b, bits), bits)


def _ib_ashr(a: int, b: int, bits: int) -> int:
    return wrap_signed(a >> _shift_count(b, bits), bits)


#: opcode -> (a, b, bits) -> result; the per-opcode dispatch table behind
#: :func:`_int_binop` and the interpreter's BinaryOp handler.
_INT_BINOPS: Dict[str, Callable[[int, int, int], int]] = {
    "add": _ib_add, "sub": _ib_sub, "mul": _ib_mul,
    "sdiv": _ib_sdiv, "srem": _ib_srem,
    "udiv": _ib_udiv, "urem": _ib_urem,
    "and": _ib_and, "or": _ib_or, "xor": _ib_xor,
    "shl": _ib_shl, "lshr": _ib_lshr, "ashr": _ib_ashr,
}


def _int_binop(op: str, a: int, b: int, bits: int) -> int:
    handler = _INT_BINOPS.get(op)
    if handler is None:
        raise ReproError(f"unknown binop {op}")
    return handler(a, b, bits)


def _fb_fadd(a: float, b: float) -> float:
    return a + b


def _fb_fsub(a: float, b: float) -> float:
    return a - b


def _fb_fmul(a: float, b: float) -> float:
    return a * b


def _fb_fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or a != a:
            return float("nan")
        return float("inf") if (a > 0) == (math.copysign(1.0, b) > 0) \
            else float("-inf")
    return a / b


def _fb_frem(a: float, b: float) -> float:
    if b == 0.0:
        return float("nan")
    return math.fmod(a, b)


_FLOAT_BINOPS: Dict[str, Callable[[float, float], float]] = {
    "fadd": _fb_fadd, "fsub": _fb_fsub, "fmul": _fb_fmul,
    "fdiv": _fb_fdiv, "frem": _fb_frem,
}


def _float_binop(op: str, a: float, b: float) -> float:
    handler = _FLOAT_BINOPS.get(op)
    if handler is None:
        raise ReproError(f"unknown float binop {op}")
    return handler(a, b)


def _fptosi(value: float, bits: int) -> int:
    """x86 cvttsd2si semantics: truncate toward zero; out of range or NaN
    produces the "integer indefinite" (minimum signed value)."""
    indefinite = -(1 << (bits - 1))
    if value != value or value in (float("inf"), float("-inf")):
        return indefinite
    truncated = int(value)
    if not (-(1 << (bits - 1)) <= truncated < (1 << (bits - 1))):
        return indefinite
    return truncated


def _cast_trunc(inst: Cast, value):
    return wrap_signed(value, inst.type.bits)  # type: ignore[attr-defined]


def _cast_zext(inst: Cast, value):
    src_bits = inst.value.type.bits  # type: ignore[attr-defined]
    return value & ((1 << src_bits) - 1)


def _cast_sext(inst: Cast, value):
    return value  # already signed


def _cast_fptosi(inst: Cast, value):
    return _fptosi(value, inst.type.bits)  # type: ignore[attr-defined]


def _cast_fptoui(inst: Cast, value):
    bits = inst.type.bits  # type: ignore[attr-defined]
    try:
        result = int(value)
    except (OverflowError, ValueError):
        return wrap_signed(1 << (bits - 1), bits)
    return wrap_signed(result & ((1 << bits) - 1), bits)


def _cast_sitofp(inst: Cast, value):
    return float(value)


def _cast_uitofp(inst: Cast, value):
    src_bits = inst.value.type.bits  # type: ignore[attr-defined]
    return float(value & ((1 << src_bits) - 1))


def _cast_bitcast(inst: Cast, value):
    return value


def _cast_ptrtoint(inst: Cast, value):
    return wrap_signed(value, 64)


def _cast_inttoptr(inst: Cast, value):
    return value & MASK64


#: opcode -> (inst, operand value) -> result; per-opcode cast dispatch.
_CAST_OPS: Dict[str, Callable] = {
    "trunc": _cast_trunc, "zext": _cast_zext, "sext": _cast_sext,
    "fptosi": _cast_fptosi, "fptoui": _cast_fptoui,
    "sitofp": _cast_sitofp, "uitofp": _cast_uitofp,
    "bitcast": _cast_bitcast,
    "ptrtoint": _cast_ptrtoint, "inttoptr": _cast_inttoptr,
}
