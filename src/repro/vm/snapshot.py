"""Snapshot/restore of simulated machine state, shared by both engines.

A :class:`MachineSnapshot` freezes everything one run needs to continue
from an instruction boundary: register file (or SSA frame stack), mapped
memory, heap-allocator cursor, call stack/location, output buffer and the
executed-instruction count.  The engines expose ``capture()``/``restore()``
built on it; the fault injectors use it to skip the fault-free prefix of
every injection run (see :mod:`repro.fi.llfi` / :mod:`repro.fi.pinfi`).

The contract that makes this a pure accelerator: a run restored from a
snapshot retires the exact instruction stream the cold run would have
retired from that boundary on — same memory bytes, same output, same
``executed`` count, same traps.  Checkpoints are recorded during the
(deterministic, hook-free-in-effect) golden run only, so they never embed
fault state.

Snapshots are in-process objects: frame states reference live IR/machine
objects and are only valid for engines built over the same module/program
instance (which is how the injectors use them — forked campaign workers
inherit both the objects and the checkpoints).

Memory is stored as the non-zero span of each region rather than a full
copy: the 4 MiB heap and 1 MiB stack are almost entirely zero at any
checkpoint, and a restore is then a memset plus a small memcpy instead of
a multi-megabyte copy per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class RegionImage:
    """The bytes of one mapped region, trimmed to its non-zero span."""

    name: str
    base: int
    size: int
    #: Offset of the first non-zero byte (0 when the region is all zero).
    start: int
    #: Bytes from ``start`` to the last non-zero byte (b"" when all zero).
    payload: bytes


def capture_memory(memory) -> Tuple[RegionImage, ...]:
    """Freeze every mapped region of a :class:`repro.vm.memory.Memory`."""
    images = []
    for region in memory.regions():
        data = bytes(region.data)
        end = len(data.rstrip(b"\x00"))
        if end == 0:
            images.append(RegionImage(region.name, region.base, region.size,
                                      0, b""))
            continue
        start = len(data) - len(data.lstrip(b"\x00"))
        images.append(RegionImage(region.name, region.base, region.size,
                                  start, data[start:end]))
    return tuple(images)


def restore_memory(memory, images: Sequence[RegionImage]) -> None:
    """Write captured region images back; bytes outside each payload span
    are zeroed, so the result is bit-identical to the captured state."""
    regions = memory.regions()
    if len(regions) != len(images):
        raise ReproError("snapshot does not match memory layout "
                         f"({len(images)} regions vs {len(regions)})")
    for region, image in zip(regions, images):
        if (region.name, region.base, region.size) != \
                (image.name, image.base, image.size):
            raise ReproError(
                f"snapshot region {image.name}@{image.base:#x} does not "
                f"match mapped region {region.name}@{region.base:#x}")
        data = region.data
        end = image.start + len(image.payload)
        if image.start:
            data[:image.start] = bytes(image.start)
        if image.payload:
            data[image.start:end] = image.payload
        if end < region.size:
            data[end:] = bytes(region.size - end)


@dataclass(frozen=True)
class FrameState:
    """One suspended IR-interpreter frame: where it resumes and its SSA
    values.  For the innermost frame ``index`` is the next instruction to
    execute; for every outer frame it is the pending ``call`` instruction
    whose result the inner frame will produce."""

    function: object
    block: object
    index: int
    values: Dict[int, object]
    saved_sp: int


@dataclass(frozen=True)
class MachineSnapshot:
    """Machine state at one instruction boundary of a run."""

    #: Instructions retired before this boundary.
    executed: int
    #: Simulated call depth at the boundary.
    call_depth: int
    #: Every mapped memory region (globals, heap, stack).
    memory: Tuple[RegionImage, ...]
    #: Heap-allocator cursor: (next free address, allocation count).
    heap: Tuple[int, int]
    #: Output buffer: (text emitted so far, size, truncated flag).
    output: Tuple[str, int, bool]
    #: Engine-specific payload: registers/xmm/flags/location for the
    #: SimX86 simulator, the frame stack for the IR interpreter.
    state: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Checkpoint:
    """A golden-run snapshot annotated with the per-category dynamic
    candidate counts reached at its boundary, so an injector resuming here
    can keep counting and still hit dynamic instance k exactly."""

    snapshot: MachineSnapshot
    counts: Dict[str, int]


class CheckpointStore:
    """Ordered golden-run checkpoints for one injector.

    Checkpoints are appended in execution order, so both ``executed`` and
    every per-category count are non-decreasing across the list — which is
    what makes :meth:`best_for` a simple suffix scan.
    """

    def __init__(self, stride: int) -> None:
        if stride <= 0:
            raise ReproError(f"checkpoint stride must be positive: {stride}")
        #: Resolved recording stride in instructions.
        self.stride = stride
        self._checkpoints: List[Checkpoint] = []

    def record(self, snapshot: MachineSnapshot, counts: Dict[str, int]) -> None:
        if self._checkpoints and \
                snapshot.executed < self._checkpoints[-1].snapshot.executed:
            raise ReproError("checkpoints must be recorded in execution order")
        self._checkpoints.append(Checkpoint(snapshot, dict(counts)))

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def checkpoints(self) -> List[Checkpoint]:
        return list(self._checkpoints)

    def best_for(self, category: str, k: int) -> Optional[Checkpoint]:
        """Latest checkpoint strictly before the k-th dynamic candidate of
        ``category`` (i.e. with fewer than k candidates retired), or None
        when even the first checkpoint is past it."""
        for checkpoint in reversed(self._checkpoints):
            if checkpoint.counts[category] < k:
                return checkpoint
        return None
