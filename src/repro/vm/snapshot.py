"""Snapshot/restore of simulated machine state, shared by both engines.

A :class:`MachineSnapshot` freezes everything one run needs to continue
from an instruction boundary: register file (or SSA frame stack), mapped
memory, heap-allocator cursor, call stack/location, output buffer and the
executed-instruction count.  The engines expose ``capture()``/``restore()``
built on it; the fault injectors use it to skip the fault-free prefix of
every injection run (see :mod:`repro.fi.llfi` / :mod:`repro.fi.pinfi`).

The contract that makes this a pure accelerator: a run restored from a
snapshot retires the exact instruction stream the cold run would have
retired from that boundary on — same memory bytes, same output, same
``executed`` count, same traps.  Checkpoints are recorded during the
(deterministic, hook-free-in-effect) golden run only, so they never embed
fault state.

Snapshots are in-process objects: frame states reference live IR/machine
objects and are only valid for engines built over the same module/program
instance (which is how the injectors use them — forked campaign workers
inherit both the objects and the checkpoints).

Memory is stored as the non-zero span of each region rather than a full
copy: the 4 MiB heap and 1 MiB stack are almost entirely zero at any
checkpoint, and a restore is then a memset plus a small memcpy instead of
a multi-megabyte copy per trial.

Restores are further amortized across trials sharing a checkpoint: the
:class:`CheckpointStore` *decodes* each snapshot's span-trimmed images
into full-size region byte strings once (:meth:`CheckpointStore
.decoded_memory`, a small LRU so a store never pins more than a few
expanded snapshots) and every subsequent restore in the bucket is a
single slice copy from the shared immutable decode — no per-trial zero
buffers, no per-trial span arithmetic.  The campaign scheduler groups a
round's trials by (category, checkpoint index) so consecutive trials hit
the same decode (see ``repro.fi.campaign``).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.recorder import get_recorder


@dataclass(frozen=True)
class RegionImage:
    """The bytes of one mapped region, trimmed to its non-zero span."""

    name: str
    base: int
    size: int
    #: Offset of the first non-zero byte (0 when the region is all zero).
    start: int
    #: Bytes from ``start`` to the last non-zero byte (b"" when all zero).
    payload: bytes


def capture_memory(memory) -> Tuple[RegionImage, ...]:
    """Freeze every mapped region of a :class:`repro.vm.memory.Memory`."""
    images = []
    for region in memory.regions():
        data = bytes(region.data)
        end = len(data.rstrip(b"\x00"))
        if end == 0:
            images.append(RegionImage(region.name, region.base, region.size,
                                      0, b""))
            continue
        start = len(data) - len(data.lstrip(b"\x00"))
        images.append(RegionImage(region.name, region.base, region.size,
                                  start, data[start:end]))
    return tuple(images)


def _check_layout(memory, images: Sequence[RegionImage]):
    """The mapped regions, verified against the snapshot's layout."""
    regions = memory.regions()
    if len(regions) != len(images):
        raise ReproError("snapshot does not match memory layout "
                         f"({len(images)} regions vs {len(regions)})")
    for region, image in zip(regions, images):
        if (region.name, region.base, region.size) != \
                (image.name, image.base, image.size):
            raise ReproError(
                f"snapshot region {image.name}@{image.base:#x} does not "
                f"match mapped region {region.name}@{region.base:#x}")
    return regions


def restore_memory(memory, images: Sequence[RegionImage]) -> None:
    """Write captured region images back; bytes outside each payload span
    are zeroed, so the result is bit-identical to the captured state."""
    for region, image in zip(_check_layout(memory, images), images):
        data = region.data
        end = image.start + len(image.payload)
        if image.start:
            data[:image.start] = bytes(image.start)
        if image.payload:
            data[image.start:end] = image.payload
        if end < region.size:
            data[end:] = bytes(region.size - end)


def expand_image(image: RegionImage) -> bytes:
    """Decode one span-trimmed region image into its full-size bytes."""
    tail = image.size - image.start - len(image.payload)
    return b"".join((bytes(image.start), image.payload, bytes(tail)))


def restore_memory_decoded(memory, images: Sequence[RegionImage],
                           decoded: Sequence[bytes]) -> None:
    """Restore from pre-expanded full-size region bytes: one slice copy
    per region, sharing the immutable decode across any number of
    restores.  Bit-identical to :func:`restore_memory` by construction
    (:func:`expand_image` zero-fills exactly what restore_memory does)."""
    for region, full in zip(_check_layout(memory, images), decoded):
        region.data[:] = full


@dataclass(frozen=True)
class FrameState:
    """One suspended IR-interpreter frame: where it resumes and its SSA
    values.  For the innermost frame ``index`` is the next instruction to
    execute; for every outer frame it is the pending ``call`` instruction
    whose result the inner frame will produce."""

    function: object
    block: object
    index: int
    values: Dict[int, object]
    saved_sp: int


@dataclass(frozen=True)
class MachineSnapshot:
    """Machine state at one instruction boundary of a run."""

    #: Instructions retired before this boundary.
    executed: int
    #: Simulated call depth at the boundary.
    call_depth: int
    #: Every mapped memory region (globals, heap, stack).
    memory: Tuple[RegionImage, ...]
    #: Heap-allocator cursor: (next free address, allocation count).
    heap: Tuple[int, int]
    #: Output buffer: (text emitted so far, size, truncated flag).
    output: Tuple[str, int, bool]
    #: Engine-specific payload: registers/xmm/flags/location for the
    #: SimX86 simulator, the frame stack for the IR interpreter.
    state: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Checkpoint:
    """A golden-run snapshot annotated with the per-category dynamic
    candidate counts reached at its boundary, so an injector resuming here
    can keep counting and still hit dynamic instance k exactly."""

    snapshot: MachineSnapshot
    counts: Dict[str, int]


#: Expanded snapshots a store keeps live at once.  Bucketed scheduling
#: makes restores of the same snapshot consecutive, so a handful of slots
#: suffices while bounding resident decodes (each is a full heap + stack
#: + globals image, ~5 MiB).
DECODED_CACHE_SNAPSHOTS = 4


class CheckpointStore:
    """Ordered golden-run checkpoints for one injector.

    Checkpoints are appended in execution order, so both ``executed`` and
    every per-category count are non-decreasing across the list — which is
    what makes :meth:`index_before` a binary search over the per-category
    count column.

    The store also owns the per-process decode cache: restores of the
    same snapshot share one expanded full-size memory image
    (:meth:`decoded_memory`) instead of re-deriving it per trial.
    ``decode_count`` / ``decoded_restores`` count cache misses and total
    served restores — the bucket-scheduler hit rate the benchmarks
    report.
    """

    def __init__(self, stride: int, decoded_cache: int = 0) -> None:
        if stride <= 0:
            raise ReproError(f"checkpoint stride must be positive: {stride}")
        #: Resolved recording stride in instructions.
        self.stride = stride
        #: Decode-LRU capacity; 0 (or negative) selects the default.
        #: Purely an accelerator knob — never part of any cache key.
        self.decoded_cache = (decoded_cache if decoded_cache > 0
                              else DECODED_CACHE_SNAPSHOTS)
        self._checkpoints: List[Checkpoint] = []
        #: Per-category count columns for :meth:`index_before` (lazy).
        self._count_columns: Dict[str, List[int]] = {}
        #: id(snapshot) -> expanded region bytes, LRU over the snapshots
        #: this store holds (ids are stable: the store keeps the strong
        #: references).
        self._decoded: "OrderedDict[int, Tuple[bytes, ...]]" = OrderedDict()
        #: Snapshot expansions performed (decode-cache misses).
        self.decode_count = 0
        #: Restores served through :meth:`decoded_memory` (hits + misses).
        self.decoded_restores = 0

    def record(self, snapshot: MachineSnapshot, counts: Dict[str, int]) -> None:
        if self._checkpoints and \
                snapshot.executed < self._checkpoints[-1].snapshot.executed:
            raise ReproError("checkpoints must be recorded in execution order")
        self._checkpoints.append(Checkpoint(snapshot, dict(counts)))
        self._count_columns.clear()

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def checkpoints(self) -> List[Checkpoint]:
        return list(self._checkpoints)

    def index_before(self, category: str, k: int) -> Optional[int]:
        """Index of the latest checkpoint strictly before the k-th dynamic
        candidate of ``category`` (fewer than k candidates retired), or
        None when even the first checkpoint is past it.

        This index is the campaign scheduler's bucket key: trials that
        resolve to the same index restore from (and share the decode of)
        the same snapshot."""
        column = self._count_columns.get(category)
        if column is None:
            column = [c.counts[category] for c in self._checkpoints]
            self._count_columns[category] = column
        i = bisect_left(column, k) - 1
        return i if i >= 0 else None

    def best_for(self, category: str, k: int) -> Optional[Checkpoint]:
        """The checkpoint at :meth:`index_before`, or None."""
        i = self.index_before(category, k)
        return self._checkpoints[i] if i is not None else None

    def decoded_memory(self, checkpoint: Checkpoint) -> Tuple[bytes, ...]:
        """Full-size region images of one checkpoint's snapshot, decoded
        once and shared by every restore in its bucket (bounded LRU)."""
        self.decoded_restores += 1
        key = id(checkpoint.snapshot)
        decoded = self._decoded.get(key)
        rec = get_recorder()
        if decoded is not None:
            self._decoded.move_to_end(key)
            if rec.enabled:
                rec.incr("snapshot.decoded_hits")
            return decoded
        decoded = tuple(expand_image(image)
                        for image in checkpoint.snapshot.memory)
        self.decode_count += 1
        if rec.enabled:
            rec.incr("snapshot.decodes")
        self._decoded[key] = decoded
        while len(self._decoded) > self.decoded_cache:
            self._decoded.popitem(last=False)
        return decoded
