"""Global-variable image construction, shared by both execution engines.

Both the IR interpreter and the SimX86 simulator place each global at the
same address and initialize the same bytes, so a fault-free run produces
bit-identical memory behaviour at both levels — the baseline the paper's
comparison rests on.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ReproError
from repro.ir.module import Module
from repro.ir.values import (
    ConstantArray, ConstantDouble, ConstantInt, ConstantNull, ConstantString,
    ConstantStruct, ConstantZero,
)
from repro.vm.memory import GLOBALS_BASE, Memory, standard_memory


def build_global_image(module: Module) -> Tuple[Memory, Dict[int, int]]:
    """Lay out and initialize all globals. Returns (memory, {id(global): addr})."""
    offset = 0
    layout = []
    for g in module.globals.values():
        align = max(g.value_type.alignment, 1)
        offset = (offset + align - 1) // align * align
        layout.append((g, offset))
        offset += g.value_type.size
    memory = standard_memory(globals_size=offset + 4096)
    addrs: Dict[int, int] = {}
    for g, off in layout:
        addr = GLOBALS_BASE + off
        addrs[id(g)] = addr
        _write_initializer(memory, addr, g.initializer, g.value_type)
    return memory, addrs


def _write_initializer(memory: Memory, addr: int, init, value_type) -> None:
    if isinstance(init, ConstantZero):
        return  # regions start zeroed
    if isinstance(init, ConstantInt):
        memory.write_int(addr, value_type.size, init.unsigned)
    elif isinstance(init, ConstantDouble):
        memory.write_double(addr, init.value)
    elif isinstance(init, ConstantNull):
        memory.write_int(addr, 8, 0)
    elif isinstance(init, ConstantString):
        memory.write_bytes(addr, init.data)
    elif isinstance(init, ConstantArray):
        elem = value_type.element
        for i, e in enumerate(init.elements):
            _write_initializer(memory, addr + i * elem.size, e, elem)
    elif isinstance(init, ConstantStruct):
        for i, f in enumerate(init.fields):
            _write_initializer(memory, addr + value_type.field_offset(i), f,
                               value_type.field_type(i))
    else:
        raise ReproError(
            f"unsupported global initializer {type(init).__name__}")
