"""Threaded-code block compilation shared by both engines.

The scalar interpreter loops in ``repro.vm.irinterp`` and
``repro.vm.asmsim`` pay a per-instruction dispatch tax: a dict lookup on
the instruction class/opcode, an ``isinstance`` chain to resolve each
operand, and re-derivation of immutable facts (operand widths, baked
global addresses, branch target indices) on every dynamic execution.
This module removes that tax by compiling each basic block once into a
flat tuple of specialized per-instruction closures (classic threaded
code): operand accessors are pre-resolved, opcode semantics are bound
directly, and the two ubiquitous instruction pairs — compare+branch and
load+binop — are fused into superinstructions.

Compilations are cached per *program object* (``cache_for``) so the
golden run, the batch sweep machine, and every forked lane in every
worker share one compilation: the cache key is ``id(program)`` with a
weakref anchor for eviction, and the per-block key is
``(id(instruction_list), start_index)`` — instruction lists are shared
across engine instances over the same program, and COW-forked workers
inherit the parent's populated cache for free.

Semantics are bit-identical to the scalar loop by construction:

* every compiled step performs the exact scalar hang check
  (``executed += 1; if executed > max_instructions: raise``), so
  ``HangTimeout`` fires at the same dynamic instruction with the same
  count — including between the two halves of a fused pair;
* traps (division, bad jumps, stack overflow, ...) are raised by the
  same code paths with the same arguments;
* anything the compiler does not understand — an unknown opcode, a phi
  mid-block, an operand shape the scalar path would reject — marks the
  segment ``UNCOMPILABLE`` and the engine's scalar loop reproduces the
  scalar behaviour (including the scalar error).

Engines only run a compiled block when no observer could tell the
difference: a lane with an armed boundary tap (checkpoint recording) or
a pending poison check falls back to the per-instruction loop for that
block (see the gate logic in each engine).

Armed hooks get a middle path.  A block whose instructions intersect the
engine's ``hook_filter`` compiles a second, *hooked* variant (cached per
filter value) whose candidate steps invoke the hook inline, exactly
where the scalar loop would.  The engine runs it only when the hook
declares the whole span safe (``compiled_span_ok``): counting hooks
(``observer = True``) always are; injection hooks are safe while the
block's candidate count cannot reach their trigger index, so the fault
can only ever fire on a scalar-fallback block — where poison tracking
sees every read.  IR ``Call`` steps nest execution (the dynamic
candidate count can grow mid-block), so a hooked candidate at or after a
call marks the block span-unsafe for non-observer hooks; the asm engine
is a flat loop, so its spans are always exact.
"""

from __future__ import annotations

import operator
import time
import weakref
from typing import Dict, Optional

from repro.backend.machine import (
    FuncRef, GlobalAddr, Imm, Label, Mem, Reg, evaluate_condition,
)
from repro.errors import ReproError
from repro.ir.instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, FCmp, GetElementPtr, ICmp,
    Instruction, Load, Phi, Ret, Select, Store, Unreachable,
)
from repro.ir.values import (
    Argument, ConstantDouble, ConstantInt, ConstantNull, ConstantUndef,
    GlobalVariable, wrap_signed,
)
from repro.vm.traps import HangTimeout, Trap, TrapKind

MASK64 = (1 << 64) - 1

#: Sentinel stored in a cache tier when a segment cannot be compiled, so
#: the (cheap) "can't compile" answer is itself memoised.
UNCOMPILABLE = object()


class BlockCache:
    """Per-program compilation cache plus compile-time statistics.

    ``ir`` and ``asm`` map ``(id(instruction_list), start_index)`` to a
    compiled segment or ``UNCOMPILABLE``.  The statistics cover compile
    *time* work (what ``compile_*_segment`` did); runtime execution
    counts live on the engines.
    """

    __slots__ = ("ir", "asm", "blocks_compiled", "superinstructions",
                 "compile_wall_s", "_anchor")

    def __init__(self) -> None:
        self.ir: Dict[tuple, object] = {}
        self.asm: Dict[tuple, object] = {}
        self.blocks_compiled = 0
        self.superinstructions = 0
        self.compile_wall_s = 0.0
        self._anchor = None

    def stats(self) -> dict:
        return {
            "blocks_compiled": self.blocks_compiled,
            "superinstructions": self.superinstructions,
            "compile_wall_s": self.compile_wall_s,
        }


_caches: Dict[int, BlockCache] = {}


def cache_for(program) -> BlockCache:
    """The shared compilation cache for ``program`` (an IR ``Module`` or
    an ``MProgram``), created on first request."""
    key = id(program)
    cache = _caches.get(key)
    if cache is not None:
        return cache
    cache = BlockCache()
    _caches[key] = cache

    def _evict(_ref, key=key):
        _caches.pop(key, None)

    try:
        cache._anchor = weakref.ref(program, _evict)
    except TypeError:
        # Not weakref-able: the cache simply lives for the process (the
        # id-keyed entry may then alias a future object, but programs in
        # this codebase are immortal per-process in practice).
        cache._anchor = None
    return cache


def peek_cache(program) -> Optional[BlockCache]:
    """The cache for ``program`` if one exists, else None (for stats)."""
    return _caches.get(id(program))


def invalidate_cache(program) -> None:
    """Drop every compiled block for ``program``.

    Compiled segments bake operand identities, branch targets and block
    indices, so they must not survive an in-place transformation of the
    underlying module.  IR pass orchestration (``PassManager.run``,
    ``prepare_for_backend``) calls this after mutating; anything else
    that rewrites instructions in place must do the same.
    """
    cache = _caches.get(id(program))
    if cache is not None:
        cache.ir.clear()
        cache.asm.clear()


# -- lazily-bound engine tables ----------------------------------------------
#
# blockcache is imported by both engines, so their module-level tables are
# fetched lazily to avoid import cycles.

_IR_TABLES = None
_ASM_HELPERS = None


def _ir_tables():
    global _IR_TABLES
    if _IR_TABLES is None:
        from repro.vm import irinterp
        _IR_TABLES = (irinterp._INT_BINOPS, irinterp._FLOAT_BINOPS,
                      irinterp._CAST_OPS)
    return _IR_TABLES


def _asm_helpers():
    global _ASM_HELPERS
    if _ASM_HELPERS is None:
        from repro.vm import asmsim
        _ASM_HELPERS = (asmsim.wrap_signed, asmsim._fp_op,
                        asmsim._cvttsd2si)
    return _ASM_HELPERS


# ============================================================================
# IR tier
# ============================================================================

class CompiledIRBlock:
    """A compiled IR block segment: straight-line ``steps`` then one
    ``term`` closure.  ``ids`` is the id-set of every covered
    instruction, used for hook-filter disjointness checks.  ``ncand`` is
    the number of inline hook invocations a hooked variant makes per
    dispatch (0 for plain variants; ``NCAND_UNSAFE`` when a nested call
    makes the span unpredictable)."""

    __slots__ = ("steps", "term", "count", "ids", "ncand")

    def __init__(self, steps, term, count, ids, ncand=0):
        self.steps = steps
        self.term = term
        self.count = count
        self.ids = ids
        self.ncand = ncand


#: Marker for Ret terminators: ``term`` returns ``(_RET, value)`` so the
#: engine can distinguish "return value" from "next block".
_RET = object()
_RET_NONE = (_RET, None)

#: ``ncand`` value for hooked IR blocks where a candidate executes at or
#: after a nested call: the dynamic candidate count can grow arbitrarily
#: mid-block, so no finite bound exists and ``count + ncand < k`` must
#: always fail for injection hooks (observer hooks ignore ncand).
NCAND_UNSAFE = 1 << 62


def _ir_hooked_step(step, inst):
    """Wrap a plain step so the hook sees (and may replace) the result,
    exactly where the scalar loop would call it."""
    key = id(inst)

    def hooked(s, frame, values):
        step(s, frame, values)
        values[key] = s.hook.on_result(inst, values[key], s)
    return hooked


def _ir_getter(operand, global_addr):
    """A ``getter(values) -> python value`` closure for one operand, or
    None if the operand shape is not understood."""
    if isinstance(operand, (Instruction, Argument)):
        key = id(operand)
        return lambda values: values[key]
    if isinstance(operand, (ConstantInt, ConstantDouble)):
        v = operand.value
        return lambda values: v
    if isinstance(operand, ConstantNull):
        return lambda values: 0
    if isinstance(operand, GlobalVariable):
        addr = global_addr[id(operand)]
        return lambda values: addr
    if isinstance(operand, ConstantUndef):
        v = 0.0 if operand.type.is_double() else 0
        return lambda values: v
    return None


_U_REL = {"ult": operator.lt, "ule": operator.le,
          "ugt": operator.gt, "uge": operator.ge}
_S_REL = {"slt": operator.lt, "sle": operator.le,
          "sgt": operator.gt, "sge": operator.ge}
_F_REL = {"oeq": operator.eq, "one": operator.ne, "une": operator.ne,
          "olt": operator.lt, "ole": operator.le,
          "ogt": operator.gt, "oge": operator.ge}


def _ir_cmp2(inst, ga, gb):
    """A two-operand comparator ``cmp2(a_values, b_values) -> 0/1`` baked
    for ``inst`` (an ICmp or FCmp), or None if unsupported."""
    pred = inst.predicate
    if isinstance(inst, ICmp):
        bits = 64 if inst.lhs.type.is_pointer() else inst.lhs.type.bits
        mask = (1 << bits) - 1
        if pred == "eq":
            return lambda values: int((ga(values) & mask)
                                      == (gb(values) & mask))
        if pred == "ne":
            return lambda values: int((ga(values) & mask)
                                      != (gb(values) & mask))
        rel = _U_REL.get(pred)
        if rel is not None:
            return lambda values: int(rel(ga(values) & mask,
                                          gb(values) & mask))
        rel = _S_REL.get(pred)
        if rel is not None:
            return lambda values: int(rel(wrap_signed(ga(values) & mask,
                                                      bits),
                                          wrap_signed(gb(values) & mask,
                                                      bits)))
        return None
    # FCmp: NaN short-circuit matches _exec_fcmp exactly.
    rel = _F_REL.get(pred)
    if rel is None:
        return None
    une = int(pred == "une")

    def cmp2(values):
        a = ga(values)
        b = gb(values)
        if a != a or b != b:
            return une
        return int(rel(a, b))
    return cmp2


def _ir_load_value(inst, gp):
    """A ``load(s, values) -> value`` closure matching _exec_load."""
    t = inst.type
    if t.is_double():
        return lambda s, values: s.memory.read_double(gp(values) & MASK64)
    if t.is_pointer():
        return lambda s, values: s.memory.read_int(
            gp(values) & MASK64, 8, signed=False)
    if t.is_integer(1):
        return lambda s, values: (
            1 if s.memory.read_int(gp(values) & MASK64, 1, signed=False)
            else 0)
    size = t.size
    return lambda s, values: s.memory.read_int(
        gp(values) & MASK64, size, signed=True)


def _ir_step(inst, global_addr):
    """One unfused compiled step for ``inst``, or None if uncompilable.

    Step protocol: ``step(s, frame, values)`` where ``s`` is the
    interpreter.  Every step begins with the exact scalar hang check.
    """
    int_binops, float_binops, cast_ops = _ir_tables()
    cls = type(inst)
    key = id(inst)

    if cls is BinaryOp:
        ga = _ir_getter(inst.lhs, global_addr)
        gb = _ir_getter(inst.rhs, global_addr)
        if ga is None or gb is None:
            return None
        fh = float_binops.get(inst.opcode)
        if fh is not None:
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                values[key] = fh(ga(values), gb(values))
            return step
        ih = int_binops.get(inst.opcode)
        if ih is None:
            return None
        bits = inst.type.bits

        def step(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            values[key] = ih(ga(values), gb(values), bits)
        return step

    if cls is ICmp or cls is FCmp:
        ga = _ir_getter(inst.lhs, global_addr)
        gb = _ir_getter(inst.rhs, global_addr)
        if ga is None or gb is None:
            return None
        cmp2 = _ir_cmp2(inst, ga, gb)
        if cmp2 is None:
            return None

        def step(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            values[key] = cmp2(values)
        return step

    if cls is Load:
        gp = _ir_getter(inst.pointer, global_addr)
        if gp is None:
            return None
        loadf = _ir_load_value(inst, gp)

        def step(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            values[key] = loadf(s, values)
        return step

    if cls is Store:
        gv = _ir_getter(inst.value, global_addr)
        gp = _ir_getter(inst.pointer, global_addr)
        if gv is None or gp is None:
            return None
        t = inst.value.type
        if t.is_double():
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                value = gv(values)
                s.memory.write_double(gp(values) & MASK64, value)
        elif t.is_pointer():
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                value = gv(values)
                s.memory.write_int(gp(values) & MASK64, 8, value & MASK64)
        elif t.is_integer(1):
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                value = gv(values)
                s.memory.write_int(gp(values) & MASK64, 1,
                                   1 if value else 0)
        else:
            size = t.size
            vmask = (1 << (size * 8)) - 1

            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                value = gv(values)
                s.memory.write_int(gp(values) & MASK64, size,
                                   value & vmask)
        return step

    if cls is GetElementPtr:
        gp = _ir_getter(inst.pointer, global_addr)
        if gp is None:
            return None
        # Walk the indices at compile time, splitting into a static byte
        # offset (constant indices) and dynamic (getter, scale) terms.
        # Per-step & MASK64 in the scalar path is mod-2^64 addition, so
        # one final mask is equivalent.
        try:
            static = 0
            terms = []
            current = None
            for n, index in enumerate(inst.indices):
                if n == 0:
                    size = inst.pointer.type.pointee.size
                    if isinstance(index, ConstantInt):
                        static += index.value * size
                    else:
                        g = _ir_getter(index, global_addr)
                        if g is None:
                            return None
                        terms.append((g, size))
                    current = inst.pointer.type.pointee
                elif current.is_array():
                    current = current.element
                    size = current.size
                    if isinstance(index, ConstantInt):
                        static += index.value * size
                    else:
                        g = _ir_getter(index, global_addr)
                        if g is None:
                            return None
                        terms.append((g, size))
                else:  # struct: scalar path requires a constant index
                    if not isinstance(index, ConstantInt):
                        return None
                    idx = index.value
                    static += current.field_offset(idx)
                    current = current.field_type(idx)
        except AttributeError:
            return None
        if not terms:
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                values[key] = (gp(values) + static) & MASK64
        elif len(terms) == 1 and static == 0:
            g0, size0 = terms[0]

            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                values[key] = (gp(values) + g0(values) * size0) & MASK64
        else:
            tterms = tuple(terms)

            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                addr = gp(values) + static
                for g, size in tterms:
                    addr += g(values) * size
                values[key] = addr & MASK64
        return step

    if cls is Cast:
        handler = cast_ops.get(inst.opcode)
        if handler is None:
            return None
        g = _ir_getter(inst.value, global_addr)
        if g is None:
            return None

        def step(s, frame, values, inst=inst):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            values[key] = handler(inst, g(values))
        return step

    if cls is Select:
        gc_ = _ir_getter(inst.condition, global_addr)
        gt_ = _ir_getter(inst.true_value, global_addr)
        gf_ = _ir_getter(inst.false_value, global_addr)
        if gc_ is None or gt_ is None or gf_ is None:
            return None

        def step(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            values[key] = gt_(values) if gc_(values) else gf_(values)
        return step

    if cls is Alloca:
        t = inst.allocated_type
        size = max(t.size, 1)
        align = max(t.alignment, 8)
        zeros = b"\x00" * size

        def step(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            sp = s._stack_sp - size
            sp -= sp % align
            if sp < s.memory.region_named("stack").base:
                raise Trap(TrapKind.STACK_OVERFLOW, frame.function.name)
            s._stack_sp = sp
            s.memory.write_bytes(sp, zeros)
            values[key] = sp
        return step

    if cls is Call:
        getters = []
        for arg in inst.args:
            g = _ir_getter(arg, global_addr)
            if g is None:
                return None
            getters.append(g)
        tgetters = tuple(getters)
        callee = inst.callee
        if inst.has_result():
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                values[key] = s._call_function(
                    callee, [g(values) for g in tgetters])
        else:
            def step(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s._call_function(callee, [g(values) for g in tgetters])
        return step

    return None


def _ir_term(inst, global_addr):
    """A terminator closure for ``inst``: returns the next BasicBlock or
    an ``(_RET, value)`` tuple.  None if uncompilable."""
    cls = type(inst)
    if cls is Branch:
        if inst.is_conditional:
            g = _ir_getter(inst.condition, global_addr)
            if g is None:
                return None
            t0_ = inst.targets[0]
            t1_ = inst.targets[1]

            def term(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                return t0_ if g(values) else t1_
            return term
        t0_ = inst.targets[0]

        def term(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            return t0_
        return term
    if cls is Ret:
        if inst.value is None:
            def term(s, frame, values):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                return _RET_NONE
            return term
        g = _ir_getter(inst.value, global_addr)
        if g is None:
            return None

        def term(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            return (_RET, g(values))
        return term
    if cls is Unreachable:
        def term(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            raise Trap(TrapKind.BAD_JUMP, "unreachable executed")
        return term
    return None


def _ir_fused_cmp_branch(cmp_inst, br_inst, global_addr):
    """Fused compare+branch terminator (counts as two instructions)."""
    ga = _ir_getter(cmp_inst.lhs, global_addr)
    gb = _ir_getter(cmp_inst.rhs, global_addr)
    if ga is None or gb is None:
        return None
    cmp2 = _ir_cmp2(cmp_inst, ga, gb)
    if cmp2 is None:
        return None
    key = id(cmp_inst)
    t0_ = br_inst.targets[0]
    t1_ = br_inst.targets[1]

    def term(s, frame, values):
        e = s.executed + 1
        s.executed = e
        if e > s.max_instructions:
            raise HangTimeout(e)
        c = cmp2(values)
        values[key] = c  # later blocks may read the cmp result
        e = s.executed + 1
        s.executed = e
        if e > s.max_instructions:
            raise HangTimeout(e)
        return t0_ if c else t1_
    return term


def _ir_fused_load_binop(load_inst, bin_inst, global_addr):
    """Fused load+binop step (counts as two instructions), or None."""
    int_binops, float_binops, _ = _ir_tables()
    gp = _ir_getter(load_inst.pointer, global_addr)
    if gp is None:
        return None
    loadf = _ir_load_value(load_inst, gp)
    lkey = id(load_inst)
    bkey = id(bin_inst)
    uses_lhs = bin_inst.lhs is load_inst
    uses_rhs = bin_inst.rhs is load_inst
    if uses_lhs and uses_rhs:
        def pair(a, values):
            return (a, a)
    elif uses_lhs:
        g = _ir_getter(bin_inst.rhs, global_addr)
        if g is None:
            return None

        def pair(a, values):
            return (a, g(values))
    else:
        g = _ir_getter(bin_inst.lhs, global_addr)
        if g is None:
            return None

        def pair(a, values):
            return (g(values), a)
    fh = float_binops.get(bin_inst.opcode)
    if fh is not None:
        def step(s, frame, values):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            a = loadf(s, values)
            values[lkey] = a
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            x, y = pair(a, values)
            values[bkey] = fh(x, y)
        return step
    ih = int_binops.get(bin_inst.opcode)
    if ih is None:
        return None
    bits = bin_inst.type.bits

    def step(s, frame, values):
        e = s.executed + 1
        s.executed = e
        if e > s.max_instructions:
            raise HangTimeout(e)
        a = loadf(s, values)
        values[lkey] = a
        e = s.executed + 1
        s.executed = e
        if e > s.max_instructions:
            raise HangTimeout(e)
        x, y = pair(a, values)
        values[bkey] = ih(x, y, bits)
    return step


def _build_ir_segment(insts, start, global_addr, hook_ids=None):
    """Compile ``insts[start:]`` or return None.  Also returns the fused
    pair count: ``(CompiledIRBlock, fused)``.

    With ``hook_ids`` (a hooked variant), result-producing candidate
    instructions get hook-invoking steps, candidate pairs are never
    fused, and ``ncand`` counts the inline hook calls — degraded to
    ``NCAND_UNSAFE`` when a candidate executes at or after a nested
    call, whose recursion can advance the hook's dynamic count."""
    steps = []
    ids = set()
    count = 0
    fused = 0
    ncand = 0
    seen_call = False
    unsafe = False
    i = start
    n = len(insts)
    while i < n:
        inst = insts[i]
        cls = type(inst)
        if cls is Phi:
            return None  # phi mid-segment: scalar loop handles it
        if cls is Branch or cls is Ret or cls is Unreachable:
            # The scalar loop never calls the hook on terminators, so
            # the plain terminator closure is exact in hooked variants.
            term = _ir_term(inst, global_addr)
            if term is None:
                return None
            ids.add(id(inst))
            return (CompiledIRBlock(tuple(steps), term, count + 1,
                                    frozenset(ids),
                                    NCAND_UNSAFE if unsafe else ncand),
                    fused)
        if (cls is ICmp or cls is FCmp) and i + 1 < n:
            nxt = insts[i + 1]
            if (type(nxt) is Branch and nxt.is_conditional
                    and nxt.condition is inst
                    and not (hook_ids is not None
                             and (id(inst) in hook_ids
                                  or id(nxt) in hook_ids))):
                term = _ir_fused_cmp_branch(inst, nxt, global_addr)
                if term is not None:
                    ids.add(id(inst))
                    ids.add(id(nxt))
                    return (CompiledIRBlock(
                        tuple(steps), term, count + 2, frozenset(ids),
                        NCAND_UNSAFE if unsafe else ncand), fused + 1)
        if cls is Load and i + 1 < n:
            nxt = insts[i + 1]
            if (type(nxt) is BinaryOp
                    and (nxt.lhs is inst or nxt.rhs is inst)
                    and not (hook_ids is not None
                             and (id(inst) in hook_ids
                                  or id(nxt) in hook_ids))):
                step = _ir_fused_load_binop(inst, nxt, global_addr)
                if step is not None:
                    steps.append(step)
                    ids.add(id(inst))
                    ids.add(id(nxt))
                    count += 2
                    fused += 1
                    i += 2
                    continue
        if cls is Call:
            seen_call = True
        step = _ir_step(inst, global_addr)
        if step is None:
            return None
        if (hook_ids is not None and id(inst) in hook_ids
                and inst.has_result()):
            if seen_call:
                unsafe = True
            step = _ir_hooked_step(step, inst)
            ncand += 1
        steps.append(step)
        ids.add(id(inst))
        count += 1
        i += 1
    return None  # fell off without a terminator: scalar loop raises


def compile_ir_segment(cache: BlockCache, insts, start, global_addr,
                       hook_ids=None) -> Optional[CompiledIRBlock]:
    """Compile one IR block segment, recording stats on ``cache``.

    Any compile-time exception marks the segment uncompilable — the
    scalar loop then reproduces the scalar behaviour exactly, including
    the scalar error if the block is genuinely malformed.
    """
    t0 = time.perf_counter()
    try:
        built = _build_ir_segment(insts, start, global_addr, hook_ids)
    except Exception:
        built = None
    cache.compile_wall_s += time.perf_counter() - t0
    if built is None:
        return None
    cb, fused = built
    cache.blocks_compiled += 1
    cache.superinstructions += fused
    return cb


# ============================================================================
# asm tier
# ============================================================================

class CompiledAsmBlock:
    """A compiled straight-line machine-code run: ``steps`` then ``term``.

    ``term_index`` is the instruction index of the terminator within the
    block's instruction list — the engine presets ``loc.index`` to it
    before calling ``term(s, loc)`` so call/ret site bookkeeping matches
    the scalar path exactly.  ``ncand`` is the number of inline hook
    invocations a hooked variant makes per dispatch (always exact: the
    asm engine is a flat loop, calls never nest)."""

    __slots__ = ("steps", "term", "term_index", "count", "ids", "ncand")

    def __init__(self, steps, term, term_index, count, ids, ncand=0):
        self.steps = steps
        self.term = term
        self.term_index = term_index
        self.count = count
        self.ids = ids
        self.ncand = ncand


def _asm_mem_addr(mem, global_addr):
    """An address closure for a Mem operand, shape-specialized.

    GPR reads go through ``regs.get(name, 0)`` exactly like ``get_gpr``
    (registers are created lazily)."""
    disp = mem.disp
    if mem.sym is not None:
        disp += global_addr[mem.sym]
    scale = mem.scale
    if mem.base is None and mem.index is None:
        addr = disp & MASK64
        return lambda s: addr
    if mem.index is None:
        bname = mem.base.name
        return lambda s: (disp + s.regs.get(bname, 0)) & MASK64
    iname = mem.index.name
    if mem.base is None:
        return lambda s: (disp + s.regs.get(iname, 0) * scale) & MASK64
    bname = mem.base.name
    return lambda s: (disp + s.regs.get(bname, 0)
                      + s.regs.get(iname, 0) * scale) & MASK64


def _asm_read_int(op, width, global_addr):
    """``read(s) -> unsigned int`` closure matching _read_int_operand."""
    mask = (1 << width) - 1
    if isinstance(op, Reg):
        name = op.name
        if width == 64:
            # gpr values are always stored pre-masked to 64 bits
            return lambda s: s.regs.get(name, 0)
        return lambda s: s.regs.get(name, 0) & mask
    if isinstance(op, Imm):
        v = op.value & mask
        return lambda s: v
    if isinstance(op, GlobalAddr):
        name = op.name

        def read(s):
            return s.global_addr[name] & mask
        return read
    if isinstance(op, Mem):
        ma = _asm_mem_addr(op, global_addr)
        size = width // 8
        return lambda s: s.memory.read_int(ma(s), size, signed=False)
    return None


def _asm_read_double(op, global_addr):
    if isinstance(op, Reg):
        name = op.name
        return lambda s: s.get_xmm_double(name)
    if isinstance(op, Mem):
        ma = _asm_mem_addr(op, global_addr)
        return lambda s: s.memory.read_double(ma(s))
    return None


def _asm_write(op, width, global_addr):
    """``write(s, v)`` closure; contract: ``v`` is pre-masked to width."""
    if isinstance(op, Reg):
        name = op.name
        def write(s, v):
            s.regs[name] = v
        return write
    if isinstance(op, Mem):
        ma = _asm_mem_addr(op, global_addr)
        size = width // 8

        def write(s, v):
            s.memory.write_int(ma(s), size, v)
        return write
    return None


def _asm_step(inst, sim, global_addr):
    """One unfused compiled asm step, or None.  Protocol: ``step(s)``."""
    _wrap_signed, _fp_op, _cvttsd2si = _asm_helpers()
    op = inst.opcode
    ops = inst.operands
    w = inst.width

    if op == "mov":
        dst, src = ops
        r = _asm_read_int(src, w, global_addr)
        wr = _asm_write(dst, w, global_addr)
        if r is None or wr is None:
            return None

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            wr(s, r(s))
        return step

    if op in ("movzx", "movsx"):
        dst, src = ops
        if not isinstance(dst, Reg):
            return None  # scalar path requires a Reg dst (set_gpr)
        sw = inst.src_width
        r = _asm_read_int(src, sw, global_addr)
        if r is None:
            return None
        name = dst.name
        mask = (1 << w) - 1
        if op == "movzx":
            if w == 64:
                def step(s):
                    e = s.executed + 1
                    s.executed = e
                    if e > s.max_instructions:
                        raise HangTimeout(e)
                    s.regs[name] = r(s)
            else:
                def step(s):
                    e = s.executed + 1
                    s.executed = e
                    if e > s.max_instructions:
                        raise HangTimeout(e)
                    s.regs[name] = r(s) & mask
            return step
        signbit = 1 << (sw - 1)
        fill = ((1 << w) - 1) ^ ((1 << sw) - 1)

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            raw = r(s)
            if raw & signbit:
                raw |= fill
            s.regs[name] = raw & mask
        return step

    if op == "lea":
        dst, src = ops
        if not isinstance(dst, Reg) or not isinstance(src, Mem):
            return None
        ma = _asm_mem_addr(src, global_addr)
        name = dst.name

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s.regs[name] = ma(s)
        return step

    if op == "imul3":
        dst, src, imm = ops
        if not isinstance(dst, Reg) or not isinstance(imm, Imm):
            return None
        r = _asm_read_int(src, w, global_addr)
        if r is None:
            return None
        name = dst.name
        iv = imm.value
        mask = (1 << w) - 1

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            a = _wrap_signed(r(s), w)
            result = (a * iv) & mask
            s._set_flags_logic(result, w)
            s.regs[name] = result
        return step

    if op in ("add", "sub", "imul", "and", "or", "xor"):
        dst, src = ops
        ra = _asm_read_int(dst, w, global_addr)
        rb = _asm_read_int(src, w, global_addr)
        wr = _asm_write(dst, w, global_addr)
        if ra is None or rb is None or wr is None:
            return None
        mask = (1 << w) - 1
        if op == "add":
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                a = ra(s)
                b = rb(s)
                result = (a + b) & mask
                s._set_flags_add(a, b, w)
                wr(s, result)
        elif op == "sub":
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                a = ra(s)
                b = rb(s)
                result = (a - b) & mask
                s._set_flags_sub(a, b, w)
                wr(s, result)
        elif op == "imul":
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                a = ra(s)
                b = rb(s)
                result = (_wrap_signed(a, w) * _wrap_signed(b, w)) & mask
                s._set_flags_logic(result, w)
                wr(s, result)
        else:
            bitop = {"and": operator.and_, "or": operator.or_,
                     "xor": operator.xor}[op]

            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                a = ra(s)
                b = rb(s)
                result = bitop(a, b)
                s._set_flags_logic(result, w)
                wr(s, result)
        return step

    if op == "cmp":
        a_, b_ = ops
        ra = _asm_read_int(a_, w, global_addr)
        rb = _asm_read_int(b_, w, global_addr)
        if ra is None or rb is None:
            return None

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s._set_flags_sub(ra(s), rb(s), w)
        return step

    if op == "test":
        a_, b_ = ops
        ra = _asm_read_int(a_, w, global_addr)
        rb = _asm_read_int(b_, w, global_addr)
        if ra is None or rb is None:
            return None

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s._set_flags_logic(ra(s) & rb(s), w)
        return step

    if op == "setcc":
        dst = ops[0]
        if not isinstance(dst, Reg):
            return None
        name = dst.name
        cond = inst.cond

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s.regs[name] = 1 if evaluate_condition(cond, s.flags) else 0
        return step

    if op == "cmovcc":
        dst, src = ops
        r = _asm_read_int(src, w, global_addr)
        wr = _asm_write(dst, w, global_addr)
        if r is None or wr is None:
            return None
        cond = inst.cond

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            if evaluate_condition(cond, s.flags):
                wr(s, r(s))
        return step

    if op == "push":
        r = _asm_read_int(ops[0], 64, global_addr)
        if r is None:
            return None

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s._push(r(s))
        return step

    if op == "pop":
        dst = ops[0]
        if not isinstance(dst, Reg):
            return None
        name = dst.name

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s.regs[name] = s._pop()
        return step

    if op == "movsd":
        dst, src = ops
        rd = _asm_read_double(src, global_addr)
        if rd is None:
            return None
        if isinstance(dst, Mem):
            ma = _asm_mem_addr(dst, global_addr)

            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.memory.write_double(ma(s), rd(s))
        elif isinstance(dst, Reg):
            name = dst.name

            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.set_xmm_double(name, rd(s))
        else:
            return None
        return step

    if op == "movq":
        dst, src = ops
        if not isinstance(dst, Reg) or not isinstance(src, Reg):
            return None
        dname = dst.name
        sname = src.name
        if dname.startswith("xmm"):
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.set_xmm(dname, s.regs.get(sname, 0))
        else:
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.regs[dname] = s.get_xmm(sname) & MASK64
        return step

    if op in ("addsd", "subsd", "mulsd", "divsd"):
        dst, src = ops
        if not isinstance(dst, Reg):
            return None
        rd = _asm_read_double(src, global_addr)
        if rd is None:
            return None
        name = dst.name
        if op == "addsd":
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.set_xmm_double(name, s.get_xmm_double(name) + rd(s))
        elif op == "subsd":
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.set_xmm_double(name, s.get_xmm_double(name) - rd(s))
        elif op == "mulsd":
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.set_xmm_double(name, s.get_xmm_double(name) * rd(s))
        else:  # divsd: zero-division semantics live in _fp_op
            def step(s):
                e = s.executed + 1
                s.executed = e
                if e > s.max_instructions:
                    raise HangTimeout(e)
                s.set_xmm_double(name, _fp_op(
                    "divsd", s.get_xmm_double(name), rd(s)))
        return step

    if op == "pxor":
        dst, src = ops
        if not isinstance(dst, Reg) or not isinstance(src, Reg):
            return None
        dname = dst.name
        sname = src.name

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s.set_xmm(dname, s.get_xmm(dname) ^ s.get_xmm(sname))
        return step

    if op == "ucomisd":
        a_, b_ = ops
        if not isinstance(a_, Reg):
            return None
        aname = a_.name
        rb = _asm_read_double(b_, global_addr)
        if rb is None:
            return None

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s._set_flags_ucomisd(s.get_xmm_double(aname), rb(s))
        return step

    if op == "cvtsi2sd":
        dst, src = ops
        if not isinstance(dst, Reg):
            return None
        r = _asm_read_int(src, w, global_addr)
        if r is None:
            return None
        name = dst.name

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s.set_xmm_double(name, float(_wrap_signed(r(s), w)))
        return step

    if op == "cvttsd2si":
        dst, src = ops
        if not isinstance(dst, Reg):
            return None
        rd = _asm_read_double(src, global_addr)
        if rd is None:
            return None
        name = dst.name
        width = inst.width

        def step(s):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s.regs[name] = _cvttsd2si(rd(s), width)
        return step

    if op in ("neg", "not", "shl", "sar", "shr", "cdq", "cqo", "idiv",
              "ud2"):
        # Rare/stateful opcodes: delegate to the scalar handler through a
        # throwaway location.  The handler is looked up on the *running*
        # instance (compiled blocks are shared across engine instances,
        # so a bound method of the compiling one must not be baked in).
        if op not in sim._ops:
            return None

        def step(s, inst=inst, op=op):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            s._ops[op](inst, s._scratch_loc)
        return step

    return None


def _asm_fused_compare(cmp_inst, jcc_inst, i, rec, global_addr):
    """Fused cmp/test/ucomisd + jcc terminator (two instructions).

    ``i`` is the compare's instruction index; fall-through resumes at
    ``i + 2`` (past both fused instructions)."""
    op = cmp_inst.opcode
    w = cmp_inst.width
    ops = cmp_inst.operands
    if op == "ucomisd":
        a_, b_ = ops
        if not isinstance(a_, Reg):
            return None
        aname = a_.name
        rb = _asm_read_double(b_, global_addr)
        if rb is None:
            return None

        def flagsf(s):
            s._set_flags_ucomisd(s.get_xmm_double(aname), rb(s))
    else:
        a_, b_ = ops
        ra = _asm_read_int(a_, w, global_addr)
        rb = _asm_read_int(b_, w, global_addr)
        if ra is None or rb is None:
            return None
        if op == "cmp":
            def flagsf(s):
                s._set_flags_sub(ra(s), rb(s), w)
        else:  # test
            def flagsf(s):
                s._set_flags_logic(ra(s) & rb(s), w)
    label = jcc_inst.operands[0]
    if not isinstance(label, Label):
        return None
    ti = rec.block_index.get(id(label.block))
    bname = label.block.name
    cond = jcc_inst.cond
    fall = i + 2

    def term(s, loc):
        e = s.executed + 1
        s.executed = e
        if e > s.max_instructions:
            raise HangTimeout(e)
        flagsf(s)
        e = s.executed + 1
        s.executed = e
        if e > s.max_instructions:
            raise HangTimeout(e)
        if evaluate_condition(cond, s.flags):
            if ti is None:
                raise Trap(TrapKind.BAD_JUMP, bname)
            loc.block = ti
            loc.index = 0
        else:
            loc.index = fall
        return loc
    return term


def _asm_term(inst, i, rec, global_addr):
    """A terminator closure for a control-flow instruction at index
    ``i``; the engine presets ``loc.index = i`` first.  Protocol:
    ``term(s, loc) -> next loc or None`` (None = program exit)."""
    op = inst.opcode
    if op == "jmp":
        label = inst.operands[0]
        if not isinstance(label, Label):
            return None
        ti = rec.block_index.get(id(label.block))
        bname = label.block.name

        def term(s, loc):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            if ti is None:
                raise Trap(TrapKind.BAD_JUMP, bname)
            loc.block = ti
            loc.index = 0
            return loc
        return term
    if op == "jcc":
        label = inst.operands[0]
        if not isinstance(label, Label):
            return None
        ti = rec.block_index.get(id(label.block))
        bname = label.block.name
        cond = inst.cond

        def term(s, loc):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            if evaluate_condition(cond, s.flags):
                if ti is None:
                    raise Trap(TrapKind.BAD_JUMP, bname)
                loc.block = ti
                loc.index = 0
            else:
                loc.index += 1
            return loc
        return term
    if op == "call":
        ref = inst.operands[0]
        if not isinstance(ref, FuncRef):
            return None

        def term(s, loc, ref=ref):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            return s._call(loc, ref)
        return term
    if op == "ret":
        def term(s, loc):
            e = s.executed + 1
            s.executed = e
            if e > s.max_instructions:
                raise HangTimeout(e)
            return s._ret()
        return term
    return None


def _fall_through_term(s, loc):
    # Segment ran off the end of the block's instruction list: hand back
    # to the outer loop, whose fall-through normalization advances to the
    # next block (or traps off the end of the function) — no instruction
    # is counted here.
    return loc


def _asm_hooked_step(step, inst):
    """Wrap a plain asm step so the hook fires after the handler work,
    exactly where the scalar loop would call it."""
    def hooked(s):
        step(s)
        s.hook.on_executed(inst, s)
    return hooked


def _asm_hooked_term(term, inst):
    """Wrap a terminator: scalar order is handler, then hook, then the
    next-location check — so the hook fires after the transfer closure
    and before the engine inspects its return."""
    def hooked(s, loc):
        next_loc = term(s, loc)
        s.hook.on_executed(inst, s)
        return next_loc
    return hooked


def _build_asm_segment(insts, start, sim, rec, hook_ids=None):
    steps = []
    ids = set()
    count = 0
    fused = 0
    ncand = 0
    global_addr = sim.global_addr
    i = start
    n = len(insts)
    while i < n:
        inst = insts[i]
        op = inst.opcode
        if (op in ("cmp", "test", "ucomisd") and i + 1 < n
                and insts[i + 1].opcode == "jcc"
                and not (hook_ids is not None
                         and (id(inst) in hook_ids
                              or id(insts[i + 1]) in hook_ids))):
            term = _asm_fused_compare(inst, insts[i + 1], i, rec,
                                      global_addr)
            if term is not None:
                ids.add(id(inst))
                ids.add(id(insts[i + 1]))
                return (CompiledAsmBlock(tuple(steps), term, i, count + 2,
                                         frozenset(ids), ncand), fused + 1)
        if op in ("jmp", "jcc", "call", "ret"):
            term = _asm_term(inst, i, rec, global_addr)
            if term is None:
                return None
            if hook_ids is not None and id(inst) in hook_ids:
                term = _asm_hooked_term(term, inst)
                ncand += 1
            ids.add(id(inst))
            return (CompiledAsmBlock(tuple(steps), term, i, count + 1,
                                     frozenset(ids), ncand), fused)
        step = _asm_step(inst, sim, global_addr)
        if step is None:
            return None
        if hook_ids is not None and id(inst) in hook_ids:
            step = _asm_hooked_step(step, inst)
            ncand += 1
        steps.append(step)
        ids.add(id(inst))
        count += 1
        i += 1
    return (CompiledAsmBlock(tuple(steps), _fall_through_term, n, count,
                             frozenset(ids), ncand), fused)


def compile_asm_segment(cache: BlockCache, insts, start, sim, rec,
                        hook_ids=None) -> Optional[CompiledAsmBlock]:
    """Compile one straight-line machine-code run, recording stats."""
    t0 = time.perf_counter()
    try:
        built = _build_asm_segment(insts, start, sim, rec, hook_ids)
    except Exception:
        built = None
    cache.compile_wall_s += time.perf_counter() - t0
    if built is None:
        return None
    cb, fused = built
    cache.blocks_compiled += 1
    cache.superinstructions += fused
    return cb
