"""Sparse region-based memory for the simulated machine.

The address space is 64-bit but only a few small islands are mapped:

======================  =====================  =======================
region                  default base           default size
======================  =====================  =======================
globals                 0x0000_0000_0001_0000  sized to the module
heap                    0x0000_0000_1000_0000  4 MiB
stack (grows down)      0x0000_7FFF_FF00_0000  1 MiB (top at base)
======================  =====================  =======================

This sparseness is load-bearing for the reproduction: a random single-bit
flip in a 64-bit pointer almost always produces an address outside every
mapped region, so pointer corruption crashes with high probability — the
same mechanism that produces SIGSEGV on real hardware, and the origin of
the paper's crash-rate results.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.vm.traps import Trap, TrapKind

GLOBALS_BASE = 0x0000_0000_0001_0000
HEAP_BASE = 0x0000_0000_1000_0000
HEAP_SIZE = 4 * 1024 * 1024
STACK_TOP = 0x0000_7FFF_FF00_0000
STACK_SIZE = 1024 * 1024

_PACK = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}
_PACK_U = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


@dataclass
class Region:
    name: str
    base: int
    size: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end


class Memory:
    """Byte-addressable memory made of disjoint mapped regions. Any access
    that is not fully inside one region raises a SEGV trap."""

    def __init__(self) -> None:
        self._regions: List[Region] = []
        #: Hot-path cache of the last region hit (locality is high).
        self._last: Optional[Region] = None

    def map_region(self, name: str, base: int, size: int) -> Region:
        if base < 0 or size <= 0:
            raise ValueError(f"bad region {name}: base={base:#x} size={size}")
        for region in self._regions:
            if base < region.end and region.base < base + size:
                raise ValueError(
                    f"region {name} overlaps {region.name}")
        region = Region(name, base, size, bytearray(size))
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def region_named(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def regions(self) -> List[Region]:
        return list(self._regions)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        return self._find(addr, size) is not None

    def _find(self, addr: int, size: int) -> Optional[Region]:
        last = self._last
        if last is not None and last.contains(addr, size):
            return last
        for region in self._regions:
            if region.contains(addr, size):
                self._last = region
                return region
        return None

    def _locate(self, addr: int, size: int) -> Tuple[Region, int]:
        region = self._find(addr, size)
        if region is None:
            raise Trap(TrapKind.SEGV, f"access to {addr:#x} ({size} bytes)")
        return region, addr - region.base

    # -- raw bytes ----------------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        region, offset = self._locate(addr, size)
        return bytes(region.data[offset:offset + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        region, offset = self._locate(addr, len(data))
        region.data[offset:offset + len(data)] = data

    # -- integers -------------------------------------------------------------
    def read_int(self, addr: int, size: int, signed: bool = True) -> int:
        region, offset = self._locate(addr, size)
        fmt = _PACK[size] if signed else _PACK_U[size]
        return struct.unpack_from(fmt, region.data, offset)[0]

    def write_int(self, addr: int, size: int, value: int) -> None:
        region, offset = self._locate(addr, size)
        value &= (1 << (size * 8)) - 1
        struct.pack_into(_PACK_U[size], region.data, offset, value)

    # -- doubles ---------------------------------------------------------------
    def read_double(self, addr: int) -> float:
        region, offset = self._locate(addr, 8)
        return struct.unpack_from("<d", region.data, offset)[0]

    def write_double(self, addr: int, value: float) -> None:
        region, offset = self._locate(addr, 8)
        struct.pack_into("<d", region.data, offset, value)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for the print_str intrinsic)."""
        chars = []
        for i in range(limit):
            byte = self.read_int(addr + i, 1, signed=False)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)


def standard_memory(globals_size: int = 64 * 1024) -> Memory:
    """Memory with the standard three-region layout."""
    mem = Memory()
    mem.map_region("globals", GLOBALS_BASE, max(globals_size, 4096))
    mem.map_region("heap", HEAP_BASE, HEAP_SIZE)
    mem.map_region("stack", STACK_TOP - STACK_SIZE, STACK_SIZE)
    return mem


class BumpAllocator:
    """Trivial malloc: bump pointer, 16-byte aligned; free is a no-op.

    Matches what the benchmarks need (allocate-once workloads) and keeps
    both execution engines byte-identical in heap layout.
    """

    def __init__(self, base: int = HEAP_BASE, size: int = HEAP_SIZE) -> None:
        self.base = base
        self.size = size
        self._next = base
        self.allocations = 0

    def malloc(self, size: int) -> int:
        if size <= 0:
            size = 1
        aligned = (size + 15) // 16 * 16
        if self._next + aligned > self.base + self.size:
            raise Trap(TrapKind.SEGV, "heap exhausted")
        addr = self._next
        self._next += aligned
        self.allocations += 1
        return addr

    def free(self, addr: int) -> None:
        # Intentionally a no-op; see class docstring.
        del addr

    # -- snapshot support ---------------------------------------------------
    def checkpoint(self) -> Tuple[int, int]:
        """Frozen cursor state for :mod:`repro.vm.snapshot`."""
        return (self._next, self.allocations)

    def restore(self, state: Tuple[int, int]) -> None:
        self._next, self.allocations = state
