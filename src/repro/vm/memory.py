"""Sparse region-based memory for the simulated machine.

The address space is 64-bit but only a few small islands are mapped:

======================  =====================  =======================
region                  default base           default size
======================  =====================  =======================
globals                 0x0000_0000_0001_0000  sized to the module
heap                    0x0000_0000_1000_0000  4 MiB
stack (grows down)      0x0000_7FFF_FF00_0000  1 MiB (top at base)
======================  =====================  =======================

This sparseness is load-bearing for the reproduction: a random single-bit
flip in a 64-bit pointer almost always produces an address outside every
mapped region, so pointer corruption crashes with high probability — the
same mechanism that produces SIGSEGV on real hardware, and the origin of
the paper's crash-rate results.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.vm.traps import Trap, TrapKind

GLOBALS_BASE = 0x0000_0000_0001_0000
HEAP_BASE = 0x0000_0000_1000_0000
HEAP_SIZE = 4 * 1024 * 1024
STACK_TOP = 0x0000_7FFF_FF00_0000
STACK_SIZE = 1024 * 1024

_PACK = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}
_PACK_U = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


@dataclass
class Region:
    name: str
    base: int
    size: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end


class Memory:
    """Byte-addressable memory made of disjoint mapped regions. Any access
    that is not fully inside one region raises a SEGV trap."""

    def __init__(self) -> None:
        self._regions: List[Region] = []
        #: Hot-path cache of the last region hit (locality is high).
        self._last: Optional[Region] = None

    def map_region(self, name: str, base: int, size: int) -> Region:
        if base < 0 or size <= 0:
            raise ValueError(f"bad region {name}: base={base:#x} size={size}")
        for region in self._regions:
            if base < region.end and region.base < base + size:
                raise ValueError(
                    f"region {name} overlaps {region.name}")
        region = Region(name, base, size, bytearray(size))
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def region_named(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def regions(self) -> List[Region]:
        return list(self._regions)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        return self._find(addr, size) is not None

    def _find(self, addr: int, size: int) -> Optional[Region]:
        last = self._last
        if last is not None and last.contains(addr, size):
            return last
        for region in self._regions:
            if region.contains(addr, size):
                self._last = region
                return region
        return None

    def _locate(self, addr: int, size: int) -> Tuple[Region, int]:
        region = self._find(addr, size)
        if region is None:
            raise Trap(TrapKind.SEGV, f"access to {addr:#x} ({size} bytes)")
        return region, addr - region.base

    # -- raw bytes ----------------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        region, offset = self._locate(addr, size)
        return bytes(region.data[offset:offset + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        region, offset = self._locate(addr, len(data))
        region.data[offset:offset + len(data)] = data

    # -- integers -------------------------------------------------------------
    def read_int(self, addr: int, size: int, signed: bool = True) -> int:
        region, offset = self._locate(addr, size)
        fmt = _PACK[size] if signed else _PACK_U[size]
        return struct.unpack_from(fmt, region.data, offset)[0]

    def write_int(self, addr: int, size: int, value: int) -> None:
        region, offset = self._locate(addr, size)
        value &= (1 << (size * 8)) - 1
        struct.pack_into(_PACK_U[size], region.data, offset, value)

    # -- doubles ---------------------------------------------------------------
    def read_double(self, addr: int) -> float:
        region, offset = self._locate(addr, 8)
        return struct.unpack_from("<d", region.data, offset)[0]

    def write_double(self, addr: int, value: float) -> None:
        region, offset = self._locate(addr, 8)
        struct.pack_into("<d", region.data, offset, value)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for the print_str intrinsic)."""
        chars = []
        for i in range(limit):
            byte = self.read_int(addr + i, 1, signed=False)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)


def standard_memory(globals_size: int = 64 * 1024) -> Memory:
    """Memory with the standard three-region layout."""
    mem = Memory()
    mem.map_region("globals", GLOBALS_BASE, max(globals_size, 4096))
    mem.map_region("heap", HEAP_BASE, HEAP_SIZE)
    mem.map_region("stack", STACK_TOP - STACK_SIZE, STACK_SIZE)
    return mem


_PAGE_SHIFT = 16
PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1


@dataclass
class CowStats:
    """Page-sharing accounting, shared by a COW memory and all its forks.

    ``pages_shared`` counts pages a fork starts out sharing with its
    parent; ``pages_cow`` counts pages later materialized privately by a
    first write.  The ratio is the fraction of the address space a trial
    actually had to copy."""

    forks: int = 0
    pages_shared: int = 0
    pages_cow: int = 0


class _CowRegion:
    """One mapped region backed by an immutable byte image plus an
    overlay of 64 KiB pages.  ``pages[i] is None`` means "read the base
    image"; a non-owned page is shared with another fork and must be
    copied before the first write."""

    __slots__ = ("name", "base", "size", "image", "pages", "owned")

    def __init__(self, name: str, base: int, size: int, image: bytes,
                 pages: Optional[List[Optional[bytearray]]] = None) -> None:
        self.name = name
        self.base = base
        self.size = size
        self.image = image
        count = (size + PAGE_SIZE - 1) >> _PAGE_SHIFT
        self.pages = [None] * count if pages is None else pages
        self.owned = bytearray(len(self.pages))

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end


class COWMemory:
    """Copy-on-write view over full-region byte images.

    Built directly over ``CheckpointStore.decoded_memory`` images (or a
    pristine cold-start image): construction copies **nothing** — unlike
    ``restore_memory_decoded``, which re-materializes every region
    (``region.data[:] = image``) per restore, untouched pages here stay
    references into the shared decode for the fork's whole lifetime.
    ``fork()`` is O(pages) pointer copies; each side then copies a page
    privately only on its first write to it.

    Drives the batched-suffix executor (:mod:`repro.vm.batch`).  It is
    never the subject of ``capture_memory`` — lanes are terminal, they
    are not re-checkpointed — so ``regions()`` exposes page state, not a
    flat ``data`` buffer.
    """

    def __init__(self, regions: List[_CowRegion],
                 stats: Optional[CowStats] = None) -> None:
        self._regions = sorted(regions, key=lambda r: r.base)
        self._last: Optional[_CowRegion] = None
        self.stats = stats if stats is not None else CowStats()

    @classmethod
    def from_images(cls, layout: Sequence[Tuple[str, int, int]],
                    images: Sequence[bytes],
                    stats: Optional[CowStats] = None) -> "COWMemory":
        """Zero-copy construction from ``(name, base, size)`` layout rows
        and matching full-region images."""
        if len(layout) != len(images):
            raise ValueError("layout/image count mismatch")
        regions = []
        for (name, base, size), image in zip(layout, images):
            if len(image) != size:
                raise ValueError(
                    f"region {name}: image is {len(image)} bytes, "
                    f"mapped size is {size}")
            regions.append(_CowRegion(name, base, size, bytes(image)))
        return cls(regions, stats)

    def fork(self) -> "COWMemory":
        """Child sharing every current page; both sides copy on write."""
        children = []
        stats = self.stats
        for region in self._regions:
            child = _CowRegion(region.name, region.base, region.size,
                               region.image, pages=list(region.pages))
            # Every page the parent owned is now shared with the child.
            region.owned[:] = bytes(len(region.owned))
            stats.pages_shared += len(region.pages)
            children.append(child)
        stats.forks += 1
        return COWMemory(children, stats)

    # -- region queries (Memory-compatible) ---------------------------------
    def region_named(self, name: str) -> _CowRegion:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def regions(self) -> List[_CowRegion]:
        return list(self._regions)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        return self._find(addr, size) is not None

    def _find(self, addr: int, size: int) -> Optional[_CowRegion]:
        last = self._last
        if last is not None and last.contains(addr, size):
            return last
        for region in self._regions:
            if region.contains(addr, size):
                self._last = region
                return region
        return None

    def _locate(self, addr: int, size: int) -> Tuple[_CowRegion, int]:
        region = self._find(addr, size)
        if region is None:
            raise Trap(TrapKind.SEGV, f"access to {addr:#x} ({size} bytes)")
        return region, addr - region.base

    # -- page plumbing ------------------------------------------------------
    def _page_for_write(self, region: _CowRegion, index: int) -> bytearray:
        page = region.pages[index]
        if page is not None and region.owned[index]:
            return page
        if page is None:
            start = index << _PAGE_SHIFT
            page = bytearray(region.image[start:start + PAGE_SIZE])
        else:
            page = bytearray(page)
        region.pages[index] = page
        region.owned[index] = 1
        self.stats.pages_cow += 1
        return page

    def _read(self, region: _CowRegion, offset: int, size: int) -> bytes:
        end = offset + size
        parts = []
        while offset < end:
            index = offset >> _PAGE_SHIFT
            stop = min(end, (index + 1) << _PAGE_SHIFT)
            page = region.pages[index]
            if page is None:
                parts.append(region.image[offset:stop])
            else:
                start = offset & _PAGE_MASK
                parts.append(bytes(page[start:start + (stop - offset)]))
            offset = stop
        return b"".join(parts)

    def _write(self, region: _CowRegion, offset: int, data: bytes) -> None:
        end = offset + len(data)
        pos = 0
        while offset < end:
            index = offset >> _PAGE_SHIFT
            stop = min(end, (index + 1) << _PAGE_SHIFT)
            page = self._page_for_write(region, index)
            start = offset & _PAGE_MASK
            page[start:start + (stop - offset)] = data[pos:pos + (stop - offset)]
            pos += stop - offset
            offset = stop

    # -- raw bytes ----------------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        region, offset = self._locate(addr, size)
        index = offset >> _PAGE_SHIFT
        if (offset + size - 1) >> _PAGE_SHIFT == index:
            page = region.pages[index]
            if page is None:
                return region.image[offset:offset + size]
            start = offset & _PAGE_MASK
            return bytes(page[start:start + size])
        return self._read(region, offset, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        if not data:
            self._locate(addr, 0)
            return
        region, offset = self._locate(addr, len(data))
        self._write(region, offset, data)

    # -- integers -----------------------------------------------------------
    def read_int(self, addr: int, size: int, signed: bool = True) -> int:
        region, offset = self._locate(addr, size)
        fmt = _PACK[size] if signed else _PACK_U[size]
        start = offset & _PAGE_MASK
        if start + size <= PAGE_SIZE:
            page = region.pages[offset >> _PAGE_SHIFT]
            if page is None:
                return struct.unpack_from(fmt, region.image, offset)[0]
            return struct.unpack_from(fmt, page, start)[0]
        data = self._read(region, offset, size)
        return struct.unpack(fmt, data)[0]

    def write_int(self, addr: int, size: int, value: int) -> None:
        region, offset = self._locate(addr, size)
        value &= (1 << (size * 8)) - 1
        start = offset & _PAGE_MASK
        if start + size <= PAGE_SIZE:
            page = self._page_for_write(region, offset >> _PAGE_SHIFT)
            struct.pack_into(_PACK_U[size], page, start, value)
        else:
            self._write(region, offset, value.to_bytes(size, "little"))

    # -- doubles ------------------------------------------------------------
    def read_double(self, addr: int) -> float:
        region, offset = self._locate(addr, 8)
        start = offset & _PAGE_MASK
        if start + 8 <= PAGE_SIZE:
            page = region.pages[offset >> _PAGE_SHIFT]
            if page is None:
                return struct.unpack_from("<d", region.image, offset)[0]
            return struct.unpack_from("<d", page, start)[0]
        return struct.unpack("<d", self._read(region, offset, 8))[0]

    def write_double(self, addr: int, value: float) -> None:
        region, offset = self._locate(addr, 8)
        start = offset & _PAGE_MASK
        if start + 8 <= PAGE_SIZE:
            page = self._page_for_write(region, offset >> _PAGE_SHIFT)
            struct.pack_into("<d", page, start, value)
        else:
            self._write(region, offset, struct.pack("<d", value))

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        chars = []
        for i in range(limit):
            byte = self.read_int(addr + i, 1, signed=False)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)


class BumpAllocator:
    """Trivial malloc: bump pointer, 16-byte aligned; free is a no-op.

    Matches what the benchmarks need (allocate-once workloads) and keeps
    both execution engines byte-identical in heap layout.
    """

    def __init__(self, base: int = HEAP_BASE, size: int = HEAP_SIZE) -> None:
        self.base = base
        self.size = size
        self._next = base
        self.allocations = 0

    def malloc(self, size: int) -> int:
        if size <= 0:
            size = 1
        aligned = (size + 15) // 16 * 16
        if self._next + aligned > self.base + self.size:
            raise Trap(TrapKind.SEGV, "heap exhausted")
        addr = self._next
        self._next += aligned
        self.allocations += 1
        return addr

    def free(self, addr: int) -> None:
        # Intentionally a no-op; see class docstring.
        del addr

    # -- snapshot support ---------------------------------------------------
    def checkpoint(self) -> Tuple[int, int]:
        """Frozen cursor state for :mod:`repro.vm.snapshot`."""
        return (self._next, self.allocations)

    def restore(self, state: Tuple[int, int]) -> None:
        self._next, self.allocations = state
