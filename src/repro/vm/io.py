"""Output capture shared by both execution engines.

SDC detection compares program output against the golden run, so both
engines must format values *identically*; all formatting lives here.
"""

from __future__ import annotations

from typing import List


class OutputBuffer:
    """Collects the simulated program's stdout."""

    def __init__(self, limit: int = 1 << 20) -> None:
        self._parts: List[str] = []
        self._size = 0
        self._limit = limit
        self.truncated = False

    def _emit(self, text: str) -> None:
        if self._size >= self._limit:
            self.truncated = True
            return
        self._parts.append(text)
        self._size += len(text)

    def print_int(self, value: int) -> None:
        self._emit(str(int(value)))

    def print_long(self, value: int) -> None:
        self._emit(str(int(value)))

    def print_double(self, value: float) -> None:
        # Fixed format so both engines agree bit-for-bit; NaN/inf are
        # rendered distinctly so FP corruption is visible as an SDC.
        if value != value:
            self._emit("nan")
        elif value in (float("inf"), float("-inf")):
            self._emit("inf" if value > 0 else "-inf")
        else:
            self._emit(f"{value:.6f}")

    def print_char(self, value: int) -> None:
        self._emit(chr(value & 0xFF))

    def print_str(self, text: str) -> None:
        self._emit(text)

    def text(self) -> str:
        return "".join(self._parts)

    # -- snapshot support ---------------------------------------------------
    def checkpoint(self) -> tuple:
        """Frozen buffer state for :mod:`repro.vm.snapshot`."""
        return ("".join(self._parts), self._size, self.truncated)

    def restore(self, state: tuple) -> None:
        text, size, truncated = state
        self._parts = [text] if text else []
        self._size = size
        self.truncated = truncated
