"""Execution engines and machine model: memory, traps, IR interpreter and
SimX86 simulator."""

from repro.vm.io import OutputBuffer
from repro.vm.memory import BumpAllocator, Memory, standard_memory
from repro.vm.result import ExecutionResult
from repro.vm.traps import HangTimeout, Trap, TrapKind

__all__ = [
    "OutputBuffer",
    "BumpAllocator",
    "Memory",
    "standard_memory",
    "ExecutionResult",
    "HangTimeout",
    "Trap",
    "TrapKind",
]
