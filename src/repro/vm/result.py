"""Execution result record shared by both engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vm.traps import Trap


@dataclass
class ExecutionResult:
    """Outcome of one simulated program run."""

    #: 'ok' (ran to completion), 'trap' (crashed), or 'hang' (budget hit).
    status: str
    #: The trap when status == 'trap'.
    trap: Optional[Trap]
    #: Captured program output.
    output: str
    #: Dynamic instructions executed.
    instructions: int
    #: main()'s return value when status == 'ok'.
    exit_value: Optional[int] = None

    @property
    def crashed(self) -> bool:
        return self.status == "trap"

    @property
    def hung(self) -> bool:
        return self.status == "hang"

    @property
    def completed(self) -> bool:
        return self.status == "ok"
