"""Batched suffix execution: fork N trials from one shared prefix.

The campaign scheduler already groups a round's trials by (category,
checkpoint) bucket (``repro.fi.campaign.order_round``).  This module is
the execution half: instead of N scalar runs that each restore the
bucket's checkpoint and replay the same golden prefix up to their
injection point, one **sweep** machine replays the bucket's shared
prefix once, and each trial **forks** from it at its own injection
boundary:

* The sweep restores the checkpoint once (or cold-starts for the
  pre-checkpoint bucket) over a :class:`~repro.vm.memory.COWMemory`
  built zero-copy from the bucket's decoded snapshot images, and runs
  with a plain candidate-counting hook — it is the golden execution, so
  every lane agrees with it up to its fork point by determinism.
* At each instruction boundary the sweep checks its pending instruction:
  when the next retired candidate would be some waiting lane's dynamic
  instance ``k``, that lane forks — an O(pages) copy-on-write memory
  fork plus a shallow state snapshot (registers / frame stack), no
  memory copied at all until someone writes.
* The forked lane is an ordinary engine instance that re-executes the
  pending candidate under its own injection hook and runs the existing
  scalar main loop to completion — so a lane diverges from the batch
  *lazily and for free*: nothing downstream depends on the batched fast
  path, and results are bit-identical to the scalar path by
  construction.
* A lane whose ``k`` cannot land on an exact instruction boundary (IR
  phi batches and call results retire between boundaries) is *detached*:
  the caller runs it through the unmodified scalar path instead.

Lock-stepping N identical machines (the obvious reading of "batched")
would be strictly more work here: until its injection point every lane
is byte-identical to the sweep, so the agreeing-lanes lane-array
degenerates to one shared machine — which is what this implements (see
DESIGN.md for the argument).

Layering: this module knows nothing about fault injection.  Lane
requests are opaque objects with a ``k`` attribute; injection hooks are
built by a caller-supplied ``hook_for`` factory (``repro.fi.llfi`` /
``repro.fi.pinfi`` pass their injection hooks and read the fault record
back off them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.vm.asmsim import AsmHook, AsmSimulator
from repro.vm.irinterp import InterpHook, IRInterpreter
from repro.vm.memory import COWMemory, CowStats
from repro.vm.result import ExecutionResult
from repro.vm.snapshot import Checkpoint, MachineSnapshot

#: Lanes per batch group when ``--batch`` is negative ("auto").
DEFAULT_BATCH_LANES = 32


class _SweepDone(Exception):
    """Raised inside the sweep once every waiting lane has forked or
    detached; unwinds the engine main loop without touching its result
    handling (``run()`` only catches Trap/HangTimeout)."""


def _no_sink(snapshot: MachineSnapshot) -> None:
    """Checkpoint sink passed to sweep engines purely to turn the
    per-boundary recording check on; never actually called (the sweeps
    override ``_take_checkpoint``)."""
    raise AssertionError("sweep checkpoint sink should never fire")


@dataclass
class _Fork:
    """A lane peeled off the sweep at its injection boundary."""

    request: object
    #: Memoryless machine snapshot at the fork boundary (shared between
    #: lanes forked at the same boundary; restore() copies per lane).
    snapshot: MachineSnapshot
    #: Private COW view of the sweep's memory at the boundary.
    memory: COWMemory
    #: Dynamic candidate count at the boundary (the lane's hook resumes
    #: counting here, exactly like a checkpoint restore).
    count: int


@dataclass
class LaneRun:
    """One forked lane, run to completion."""

    request: object
    hook: object
    machine: object
    result: ExecutionResult
    #: Shared-prefix instructions this lane skipped (its fork boundary).
    fork_executed: int
    wall_s: float


@dataclass
class BatchStats:
    """Per-group accounting for manifests and benchmarks."""

    lanes: int = 0
    forked: int = 0
    detached: int = 0
    #: Instructions the sweep retired once on behalf of every forked lane.
    shared_instructions: int = 0
    #: Instructions the lanes retired themselves (suffixes + detached
    #: scalar runs); filled in by the injector.
    lane_instructions: int = 0
    sweep_wall_s: float = 0.0
    #: COW page traffic (see repro.vm.memory.CowStats).
    forks: int = 0
    pages_shared: int = 0
    pages_cow: int = 0

    def to_record(self, round_no: int, group: int, checkpoint: int) -> dict:
        return {
            "round": round_no,
            "group": group,
            "checkpoint": checkpoint,
            "lanes": self.lanes,
            "forked": self.forked,
            "detached": self.detached,
            "shared_instructions": self.shared_instructions,
            "lane_instructions": self.lane_instructions,
            "sweep_wall_s": round(self.sweep_wall_s, 6),
            "forks": self.forks,
            "pages_shared": self.pages_shared,
            "pages_cow": self.pages_cow,
        }


class _AsmCountingHook(AsmHook):
    """Counts retired candidates (the engine's hook_filter pre-selects
    them), mirroring the injectors' counting exactly."""

    def __init__(self) -> None:
        self.count = 0

    def on_executed(self, inst, sim) -> None:
        self.count += 1


class _IRCountingHook(InterpHook):
    def __init__(self) -> None:
        self.count = 0

    def on_result(self, inst, value, interp):
        self.count += 1
        return value


class _AsmSweep(AsmSimulator):
    """Golden sweep over a bucket's shared prefix.

    Runs with ``checkpoint_stride=1`` and ``_next_checkpoint=0`` so the
    recording branch of the main loop fires at *every* instruction
    boundary, with ``_take_checkpoint`` overridden to make the
    fork/detach decision instead of recording a snapshot."""

    def __init__(self, program, requests, *, candidate_ids, budget,
                 max_call_depth, template, memory, base_count,
                 compile_blocks=True) -> None:
        hook = _AsmCountingHook()
        super().__init__(program, max_instructions=budget,
                         max_call_depth=max_call_depth,
                         hook=hook, hook_filter=candidate_ids,
                         checkpoint_stride=1, checkpoint_sink=_no_sink,
                         template=template, memory=memory,
                         compile_blocks=compile_blocks)
        hook.count = base_count
        # Fire the boundary check from the very first boundary (executed
        # may be 0 on a cold start); never advanced, so it fires at all.
        self._next_checkpoint = 0
        self._waiting = sorted(requests, key=lambda r: r.k)
        self._forks: List[_Fork] = []
        self._missed: List[object] = []

    def _take_checkpoint(self, loc) -> None:
        count = self.hook.count
        waiting = self._waiting
        while waiting and waiting[0].k <= count:
            # The lane's k retired between boundaries — cannot happen at
            # the asm tier (every candidate is a boundary instruction),
            # kept as a correctness net: detach to the scalar path.
            self._missed.append(waiting.pop(0))
        if not waiting:
            raise _SweepDone
        if waiting[0].k == count + 1:
            inst = loc.func.blocks[loc.block][loc.index]
            if id(inst) in self.hook_filter:
                snapshot = self.capture(loc, include_memory=False)
                while waiting and waiting[0].k == count + 1:
                    self._forks.append(_Fork(waiting.pop(0), snapshot,
                                             self.memory.fork(), count))
                if not waiting:
                    raise _SweepDone


class _IRSweep(IRInterpreter):
    """IR-tier analog of :class:`_AsmSweep`.

    Differs only in where it finds the pending instruction, and in that
    misses are real: phi batches and pending-call results retire between
    boundaries, so a lane whose k lands on one detaches."""

    def __init__(self, module, requests, *, candidate_ids, budget,
                 max_call_depth, template, memory, base_count,
                 compile_blocks=True) -> None:
        hook = _IRCountingHook()
        super().__init__(module, max_instructions=budget,
                         max_call_depth=max_call_depth,
                         hook=hook, hook_filter=candidate_ids,
                         checkpoint_stride=1, checkpoint_sink=_no_sink,
                         template=template, memory=memory,
                         compile_blocks=compile_blocks)
        hook.count = base_count
        self._next_checkpoint = 0
        self._waiting = sorted(requests, key=lambda r: r.k)
        self._forks: List[_Fork] = []
        self._missed: List[object] = []

    def _take_checkpoint(self) -> None:
        count = self.hook.count
        waiting = self._waiting
        while waiting and waiting[0].k <= count:
            self._missed.append(waiting.pop(0))
        if not waiting:
            raise _SweepDone
        if waiting[0].k == count + 1:
            frame = self.current_frame
            inst = frame.resume_block.instructions[frame.resume_index]
            if id(inst) in self.hook_filter:
                snapshot = self.capture(include_memory=False)
                while waiting and waiting[0].k == count + 1:
                    self._forks.append(_Fork(waiting.pop(0), snapshot,
                                             self.memory.fork(), count))
                if not waiting:
                    raise _SweepDone


def _bucket_memory(checkpoint: Optional[Checkpoint],
                   decoded_images: Optional[Sequence[bytes]],
                   pristine_layout: Sequence[Tuple[str, int, int]],
                   pristine_images: Sequence[bytes],
                   stats: CowStats) -> COWMemory:
    """COW memory over the bucket's shared image: the checkpoint's
    decoded regions, or the pristine program image for the cold bucket.
    Zero bytes are copied either way."""
    if checkpoint is not None:
        layout = [(img.name, img.base, img.size)
                  for img in checkpoint.snapshot.memory]
        return COWMemory.from_images(layout, decoded_images, stats)
    return COWMemory.from_images(pristine_layout, pristine_images, stats)


def _drain(sweep, start_executed: int, sweep_wall: float,
           lane_factory: Callable[[_Fork], Tuple[object, object]],
           lanes_total: int) -> Tuple[List[LaneRun], List[object], BatchStats]:
    """Run every fork to completion; collect stats and detached lanes."""
    runs: List[LaneRun] = []
    for fork in sweep._forks:
        t0 = time.perf_counter()
        machine, hook = lane_factory(fork)
        result = machine.run()
        runs.append(LaneRun(fork.request, hook, machine, result,
                            fork.snapshot.executed,
                            time.perf_counter() - t0))
    detached = list(sweep._missed) + list(sweep._waiting)
    cow = sweep.memory.stats
    stats = BatchStats(
        lanes=lanes_total,
        forked=len(runs),
        detached=len(detached),
        shared_instructions=sweep.executed - start_executed,
        sweep_wall_s=sweep_wall,
        forks=cow.forks,
        pages_shared=cow.pages_shared,
        pages_cow=cow.pages_cow,
    )
    return runs, detached, stats


def run_asm_batch(program, requests: Sequence[object], *,
                  candidate_ids: frozenset,
                  hook_for: Callable[[object], AsmHook],
                  budget: int, max_call_depth: int,
                  template: AsmSimulator,
                  pristine_layout: Sequence[Tuple[str, int, int]],
                  pristine_images: Sequence[bytes],
                  checkpoint: Optional[Checkpoint] = None,
                  decoded_images: Optional[Sequence[bytes]] = None,
                  base_count: int = 0,
                  compile_blocks: bool = True):
    """One bucket's worth of asm-tier trials: shared sweep + COW forks.

    Returns ``(lane_runs, detached_requests, stats)``; detached requests
    must be run by the caller through the scalar path."""
    cow_stats = CowStats()
    memory = _bucket_memory(checkpoint, decoded_images,
                            pristine_layout, pristine_images, cow_stats)
    t0 = time.perf_counter()
    sweep = _AsmSweep(program, requests, candidate_ids=candidate_ids,
                      budget=budget, max_call_depth=max_call_depth,
                      template=template, memory=memory,
                      base_count=base_count, compile_blocks=compile_blocks)
    start_executed = 0
    if checkpoint is not None:
        sweep.restore(checkpoint.snapshot, skip_memory=True)
        start_executed = checkpoint.snapshot.executed
    try:
        sweep.run()
    except _SweepDone:
        pass
    sweep_wall = time.perf_counter() - t0

    def lane_factory(fork: _Fork):
        hook = hook_for(fork.request)
        hook.count = fork.count
        lane = AsmSimulator(program, max_instructions=budget,
                            max_call_depth=max_call_depth,
                            hook=hook, hook_filter=candidate_ids,
                            template=template, memory=fork.memory,
                            compile_blocks=compile_blocks)
        lane.restore(fork.snapshot, skip_memory=True)
        return lane, hook

    return _drain(sweep, start_executed, sweep_wall, lane_factory,
                  len(requests))


def run_ir_batch(module, requests: Sequence[object], *,
                 candidate_ids: frozenset,
                 hook_for: Callable[[object], InterpHook],
                 budget: int, max_call_depth: int,
                 template: IRInterpreter,
                 pristine_layout: Sequence[Tuple[str, int, int]],
                 pristine_images: Sequence[bytes],
                 checkpoint: Optional[Checkpoint] = None,
                 decoded_images: Optional[Sequence[bytes]] = None,
                 base_count: int = 0,
                 compile_blocks: bool = True):
    """IR-tier analog of :func:`run_asm_batch`."""
    cow_stats = CowStats()
    memory = _bucket_memory(checkpoint, decoded_images,
                            pristine_layout, pristine_images, cow_stats)
    t0 = time.perf_counter()
    sweep = _IRSweep(module, requests, candidate_ids=candidate_ids,
                     budget=budget, max_call_depth=max_call_depth,
                     template=template, memory=memory,
                     base_count=base_count, compile_blocks=compile_blocks)
    start_executed = 0
    if checkpoint is not None:
        sweep.restore(checkpoint.snapshot, skip_memory=True)
        start_executed = checkpoint.snapshot.executed
    try:
        sweep.run()
    except _SweepDone:
        pass
    sweep_wall = time.perf_counter() - t0

    def lane_factory(fork: _Fork):
        hook = hook_for(fork.request)
        hook.count = fork.count
        lane = IRInterpreter(module, max_instructions=budget,
                             max_call_depth=max_call_depth,
                             hook=hook, hook_filter=candidate_ids,
                             template=template, memory=fork.memory,
                             compile_blocks=compile_blocks)
        lane.restore(fork.snapshot, skip_memory=True)
        return lane, hook

    return _drain(sweep, start_executed, sweep_wall, lane_factory,
                  len(requests))


def pristine_image_of(machine) -> Tuple[Tuple[Tuple[str, int, int], ...],
                                        Tuple[bytes, ...]]:
    """(layout, full-region images) of a never-run engine's memory — the
    cold-bucket base image.  Captured once per injector off its template
    machine and shared by every cold sweep."""
    regions = machine.memory.regions()
    layout = tuple((r.name, r.base, r.size) for r in regions)
    images = tuple(bytes(r.data) for r in regions)
    return layout, images
