"""Trap model shared by the IR interpreter and the SimX86 simulator.

A :class:`Trap` is the simulated analogue of the OS terminating the program
on a hardware exception — the paper's *crash* outcome ("if the program is
terminated by the OS due to an exception, it is classified as a crash").
"""

from __future__ import annotations

import enum


class TrapKind(enum.Enum):
    #: Access to an unmapped or out-of-range address (≙ SIGSEGV).
    SEGV = "segmentation fault"
    #: Integer divide by zero or signed overflow in division (≙ SIGFPE, x86 #DE).
    DIVIDE_ERROR = "divide error"
    #: Stack grew beyond its mapped region.
    STACK_OVERFLOW = "stack overflow"
    #: Control transferred to an invalid code location (≙ SIGILL/SIGSEGV).
    BAD_JUMP = "bad jump target"
    #: `ret` popped a value that is not a valid return address.
    BAD_RETURN = "bad return address"
    #: Call depth exceeded the simulator's frame limit.
    CALL_DEPTH = "call depth exceeded"


class Trap(Exception):
    """Raised by the VM when the simulated program faults."""

    def __init__(self, kind: TrapKind, detail: str = "") -> None:
        self.kind = kind
        self.detail = detail
        message = kind.value if not detail else f"{kind.value}: {detail}"
        super().__init__(message)


class HangTimeout(Exception):
    """Raised when the dynamic instruction budget is exhausted — the
    simulated analogue of the paper's timeout-based hang detection."""

    def __init__(self, executed: int) -> None:
        self.executed = executed
        super().__init__(f"instruction budget exhausted after {executed}")
