"""SimX86 simulator: executes compiled machine programs.

This is the runtime under PINFI. It shares the memory model, global image,
output formatting and trap/hang conventions with the IR interpreter, so a
fault-free run produces byte-identical output at both levels.

Machine state: sixteen 64-bit GPRs, sixteen 128-bit XMM registers (doubles
live in the low 64 bits — the basis of the paper's XMM pruning heuristic),
and five EFLAGS bits (CF, PF, ZF, SF, OF) at their real bit positions.

Return addresses are synthetic code addresses (``CODE_BASE + 16*site``)
pushed through rsp into simulated stack memory; a corrupted return address
or stack pointer therefore faults exactly the way it would on hardware.

Opcodes dispatch through a precomputed bound-method table
(``_OPCODE_METHODS``) instead of an if/elif chain, and the simulator can
``capture()``/``restore()`` its complete state at any instruction boundary
(see :mod:`repro.vm.snapshot`): a restored run retires the exact stream a
cold run would from that boundary on, which is what lets fault-injection
trials skip their fault-free prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.backend.machine import (
    FLAG_NAMES, FuncRef, GlobalAddr, Imm, Label, MBlock, MFunction, MInst,
    Mem, MProgram, Reg, evaluate_condition,
)
from repro.ir.values import bits_to_double, double_to_bits
from repro.obs import get_recorder
from repro.vm.blockcache import UNCOMPILABLE, cache_for, compile_asm_segment
from repro.vm.image import build_global_image
from repro.vm.io import OutputBuffer
from repro.vm.memory import BumpAllocator, STACK_TOP
from repro.vm.result import ExecutionResult
from repro.vm.snapshot import (
    MachineSnapshot, capture_memory, restore_memory, restore_memory_decoded,
)
from repro.vm.traps import HangTimeout, Trap, TrapKind

MASK64 = (1 << 64) - 1
CODE_BASE = 0x0000_4000_0000_0000
EXIT_TOKEN = CODE_BASE

#: Parity of each byte value (PF=1 when the low result byte has an even
#: number of set bits), precomputed like hardware.
_PARITY = tuple(1 if bin(i).count("1") % 2 == 0 else 0 for i in range(256))


class AsmHook:
    """Base class for fault-injection hooks into the simulator."""

    #: Set to True by hooks that will never act again this run (e.g. an
    #: injection hook after it fired).  The block compiler uses this to
    #: run the post-injection suffix on the compiled path.
    finished = False

    #: True for hooks whose ``on_executed`` mutates nothing but the hook
    #: itself (pure observers, e.g. candidate counters): every compiled
    #: span is safe for them regardless of its candidate count.
    observer = False

    def on_executed(self, inst: MInst, sim: "AsmSimulator") -> None:
        """Called after each instruction retires; may corrupt state."""

    def compiled_span_ok(self, ncand: int) -> bool:
        """May a compiled block that will invoke this hook ``ncand``
        times run without scalar fallback?  Override for hooks that can
        bound when they next act (injection hooks: the block is safe
        while its candidate count cannot reach the trigger index)."""
        return self.observer


@dataclass
class _Loc:
    """Program counter: function record + block index + instruction index."""
    func: "_FuncRec"
    block: int
    index: int


class _FuncRec:
    __slots__ = ("name", "mfunc", "blocks", "block_index")

    def __init__(self, mfunc: MFunction) -> None:
        self.name = mfunc.name
        self.mfunc = mfunc
        self.blocks = [b.insts for b in mfunc.blocks]
        self.block_index = {id(b): i for i, b in enumerate(mfunc.blocks)}


class AsmSimulator:
    #: opcode -> handler method name; resolved to bound methods per
    #: instance so the hot loop is one dict lookup plus one call.
    _OPCODE_METHODS: Dict[str, str] = {
        "mov": "_op_mov",
        "movsx": "_op_movx", "movzx": "_op_movx",
        "lea": "_op_lea",
        "imul3": "_op_imul3",
        "add": "_op_alu", "sub": "_op_alu", "and": "_op_alu",
        "or": "_op_alu", "xor": "_op_alu", "imul": "_op_alu",
        "neg": "_op_neg",
        "not": "_op_not",
        "shl": "_op_shift", "sar": "_op_shift", "shr": "_op_shift",
        "cdq": "_op_sign_extend_acc", "cqo": "_op_sign_extend_acc",
        "idiv": "_op_idiv",
        "cmp": "_op_cmp",
        "test": "_op_test",
        "setcc": "_op_setcc",
        "cmovcc": "_op_cmovcc",
        "jmp": "_op_jmp",
        "jcc": "_op_jcc",
        "push": "_op_push",
        "pop": "_op_pop",
        "call": "_op_call",
        "ret": "_op_ret",
        "movsd": "_op_movsd",
        "movq": "_op_movq",
        "addsd": "_op_sse_arith", "subsd": "_op_sse_arith",
        "mulsd": "_op_sse_arith", "divsd": "_op_sse_arith",
        "pxor": "_op_pxor",
        "ucomisd": "_op_ucomisd",
        "cvtsi2sd": "_op_cvtsi2sd",
        "cvttsd2si": "_op_cvttsd2si",
        "ud2": "_op_ud2",
    }

    def __init__(self, program: MProgram,
                 max_instructions: int = 100_000_000,
                 max_call_depth: int = 400,
                 hook: Optional[AsmHook] = None,
                 hook_filter: Optional[frozenset] = None,
                 checkpoint_stride: int = 0,
                 checkpoint_sink: Optional[Callable[[MachineSnapshot], None]]
                 = None,
                 template: Optional["AsmSimulator"] = None,
                 memory=None,
                 compile_blocks: bool = True) -> None:
        if program.ir_module is None:
            raise ReproError("program has no IR module attached")
        if (template is None) != (memory is None):
            raise ReproError("template and memory must be given together")
        self.program = program
        self.max_instructions = max_instructions
        self.max_call_depth = max_call_depth
        self.hook = hook
        #: When set, the hook only fires for instructions whose id() is in
        #: this set (fault injectors pass their candidate set here, keeping
        #: per-instruction overhead off the hot path).
        self.hook_filter = hook_filter
        self.output = OutputBuffer()
        self.executed = 0
        self.call_depth = 0
        self.fault_activated = False
        #: Poisoned targets: ('gpr', name) / ('xmm', name) / ('flag', name).
        self.poison: Dict[Tuple[str, str], bool] = {}
        #: Last scalar memory read: (instruction ordinal, addr, nbytes).
        #: Memory-cell fault models (memflip) match the ordinal against
        #: ``executed`` to corrupt the cell the firing instruction just
        #: read; compiled blocks bypass the tag, which is safe because a
        #: firing instruction always runs on a scalar-fallback block.
        self.last_read: Optional[Tuple[int, int, int]] = None

        #: Checkpoint recording: every ``checkpoint_stride`` retired
        #: instructions (0 = off), pass a MachineSnapshot to the sink.
        self._checkpoint_stride = checkpoint_stride
        self._checkpoint_sink = checkpoint_sink
        self._next_checkpoint = checkpoint_stride
        #: Set by restore(): where run() continues instead of ``main``.
        self._resume_loc: Optional[_Loc] = None

        if template is not None:
            # Share the immutable per-program structures (function records,
            # poison metadata, intrinsic map, global addresses) and take the
            # caller's memory — this is how batched lanes fork cheaply from
            # one decoded image (see repro.vm.batch).
            self.memory = memory
            self.global_addr: Dict[str, int] = template.global_addr
            self.funcs: Dict[str, _FuncRec] = template.funcs
            self.intrinsics = template.intrinsics
            self._meta: Dict[int, Tuple[Tuple, Tuple]] = template._meta
        else:
            self.memory, addr_by_id = build_global_image(program.ir_module)
            self.global_addr = {
                g.name: addr_by_id[id(g)]
                for g in program.ir_module.globals.values()}
            self.funcs = {
                name: _FuncRec(mf) for name, mf in program.functions.items()}
            self.intrinsics = {name: f.name for name, f in
                               program.ir_module.functions.items()
                               if f.is_intrinsic}
            #: Static per-instruction metadata (uses/defs as poison targets).
            self._meta = {}
            for rec in self.funcs.values():
                for insts in rec.blocks:
                    for inst in insts:
                        self._meta[id(inst)] = _poison_meta(inst)
        self.heap = BumpAllocator()

        self.regs: Dict[str, int] = {}
        self.xmm: Dict[str, int] = {}
        self.flags: Dict[str, int] = {n: 0 for n in FLAG_NAMES}

        #: call-site token <-> return location registry.
        self._site_tokens: Dict[Tuple[str, int, int], int] = {}
        self._token_sites: Dict[int, Tuple[str, int, int]] = {}

        self._ops: Dict[str, Callable[[MInst, _Loc], Optional[_Loc]]] = {
            op: getattr(self, meth) for op, meth in
            self._OPCODE_METHODS.items()}

        #: Threaded-code execution (see repro.vm.blockcache).  An armed
        #: boundary tap (checkpoint recording) always takes the scalar
        #: path, so recording runs never compile.
        self._recording = (checkpoint_sink is not None
                           and checkpoint_stride > 0)
        self._compiling = compile_blocks and not self._recording
        self._block_cache = cache_for(program) if self._compiling else None
        #: Runtime counters: straight-line runs executed compiled vs runs
        #: that fell back to the scalar loop while compilation was on.
        self.compiled_blocks = 0
        self.fallback_blocks = 0
        #: Memoised hook_filter-disjointness per compiled segment key.
        self._hookfree: Dict[Tuple[int, int], bool] = {}
        #: Memoised hooked-variant blocks per segment key (the filter is
        #: fixed for an engine's lifetime; the shared cache keys hooked
        #: variants by filter *value* so same-category runs share them).
        self._hooked: Dict[Tuple[int, int], object] = {}
        self._filter_key = (frozenset(hook_filter)
                            if hook_filter is not None else None)
        #: Throwaway location for compiled steps that delegate to scalar
        #: handlers (the handler's _advance mutates it harmlessly).
        self._scratch_loc = _Loc(None, 0, 0)  # type: ignore[arg-type]

    # -- register access ------------------------------------------------------
    def get_gpr(self, name: str) -> int:
        return self.regs.get(name, 0)

    def set_gpr(self, name: str, value: int) -> None:
        self.regs[name] = value & MASK64

    def get_xmm(self, name: str) -> int:
        return self.xmm.get(name, 0)

    def set_xmm(self, name: str, value: int) -> None:
        self.xmm[name] = value & ((1 << 128) - 1)

    def get_xmm_double(self, name: str) -> float:
        return bits_to_double(self.get_xmm(name) & MASK64)

    def set_xmm_double(self, name: str, value: float) -> None:
        high = self.get_xmm(name) & ~MASK64
        self.xmm[name] = high | double_to_bits(value)

    # -- snapshot / restore ---------------------------------------------------
    def capture(self, loc: _Loc,
                include_memory: bool = True) -> MachineSnapshot:
        """Freeze complete machine state at the boundary *before* the
        instruction at ``loc`` executes (``executed`` retired so far).

        ``include_memory=False`` leaves the memory images empty — for
        batched forks, which carry memory separately as a COW fork."""
        return MachineSnapshot(
            executed=self.executed,
            call_depth=self.call_depth,
            memory=capture_memory(self.memory) if include_memory else (),
            heap=self.heap.checkpoint(),
            output=self.output.checkpoint(),
            state={
                "regs": dict(self.regs),
                "xmm": dict(self.xmm),
                "flags": dict(self.flags),
                "loc": (loc.func.name, loc.block, loc.index),
                "site_tokens": dict(self._site_tokens),
            })

    def restore(self, snapshot: MachineSnapshot,
                memory_images=None, skip_memory: bool = False) -> None:
        """Load a snapshot; the next run() continues from its boundary
        instead of entering ``main``.  The snapshot is not consumed — any
        number of simulators may restore from the same one.

        ``memory_images`` — pre-expanded full-size region bytes (from
        :meth:`repro.vm.snapshot.CheckpointStore.decoded_memory`) shared
        across restores of this snapshot; bit-identical to the span-wise
        restore, just cheaper.

        ``skip_memory`` — leave ``self.memory`` untouched (batched lanes
        already hold a COW fork of the right bytes)."""
        state = snapshot.state
        if skip_memory:
            pass
        elif memory_images is not None:
            restore_memory_decoded(self.memory, snapshot.memory,
                                   memory_images)
        else:
            restore_memory(self.memory, snapshot.memory)
        self.heap.restore(snapshot.heap)
        self.output.restore(snapshot.output)
        self.executed = snapshot.executed
        self.call_depth = snapshot.call_depth
        self.regs = dict(state["regs"])
        self.xmm = dict(state["xmm"])
        self.flags = dict(state["flags"])
        self._site_tokens = dict(state["site_tokens"])
        self._token_sites = {tok: site
                             for site, tok in self._site_tokens.items()}
        func_name, block, index = state["loc"]
        self._resume_loc = _Loc(self.funcs[func_name], block, index)

    def _take_checkpoint(self, loc: _Loc) -> None:
        self._checkpoint_sink(self.capture(loc))
        self._next_checkpoint = self.executed + self._checkpoint_stride

    # -- top level -----------------------------------------------------------------
    def run(self, entry: str = "main") -> ExecutionResult:
        try:
            exit_value = self._execute(entry)
            outcome = ExecutionResult("ok", None, self.output.text(),
                                      self.executed, exit_value)
        except Trap as trap:
            outcome = ExecutionResult("trap", trap, self.output.text(),
                                      self.executed)
        except HangTimeout:
            outcome = ExecutionResult("hang", None, self.output.text(),
                                      self.executed)
        return self._record_run(outcome)

    def _record_run(self, outcome: ExecutionResult) -> ExecutionResult:
        # Observability: one recorder call per whole-program run — never
        # per instruction — so the disabled path costs a no-op call.
        rec = get_recorder()
        if rec.enabled:
            rec.incr("vm.asm.runs")
            rec.incr("vm.asm.instructions", outcome.instructions)
            if self.compiled_blocks:
                rec.incr("vm.asm.compiled_blocks", self.compiled_blocks)
            if self.fallback_blocks:
                rec.incr("vm.asm.fallback_blocks", self.fallback_blocks)
            if outcome.hung:
                rec.incr("vm.asm.hang_budget_trips")
            elif outcome.crashed:
                rec.incr("vm.asm.traps")
        return outcome

    def _execute(self, entry: str) -> int:
        if self._resume_loc is not None:
            loc = self._resume_loc
            self._resume_loc = None
        else:
            rec = self.funcs.get(entry)
            if rec is None:
                raise ReproError(f"no function {entry} in program")
            self.set_gpr("rsp", STACK_TOP)
            self._push(EXIT_TOKEN)
            loc = _Loc(rec, 0, 0)
            self.call_depth = 1
        hook = self.hook
        hook_filter = self.hook_filter
        ops = self._ops
        recording = (self._checkpoint_sink is not None
                     and self._checkpoint_stride > 0)
        while True:
            insts = loc.func.blocks[loc.block]
            while loc.index >= len(insts):
                # Fall through to the next block in layout order.
                loc.block += 1
                loc.index = 0
                if loc.block >= len(loc.func.blocks):
                    raise Trap(TrapKind.BAD_JUMP,
                               f"fell off function {loc.func.name}")
                insts = loc.func.blocks[loc.block]
            if self._compiling:
                # Threaded-code fast path (repro.vm.blockcache): run the
                # rest of this straight line as compiled closures when no
                # observer could tell the difference.  An armed hook may
                # still run compiled through the hooked variant (inline
                # hook calls) when it declares the span safe — otherwise
                # fall back to the scalar loop until the next transfer.
                if not self.poison or self.fault_activated:
                    cache = self._block_cache
                    key = (id(insts), loc.index)
                    cb = cache.asm.get(key)
                    if cb is None:
                        cb = compile_asm_segment(cache, insts, loc.index,
                                                 self, loc.func)
                        cache.asm[key] = (cb if cb is not None
                                          else UNCOMPILABLE)
                    if cb is not None and cb is not UNCOMPILABLE:
                        if hook is None or hook.finished:
                            pass  # plain variant is exact
                        elif hook_filter is not None:
                            ok = self._hookfree.get(key)
                            if ok is None:
                                ok = hook_filter.isdisjoint(cb.ids)
                                self._hookfree[key] = ok
                            if not ok:
                                hcb = self._hooked.get(key)
                                if hcb is None:
                                    gkey = (key[0], key[1],
                                            self._filter_key)
                                    hcb = cache.asm.get(gkey)
                                    if hcb is None:
                                        hcb = compile_asm_segment(
                                            cache, insts, loc.index,
                                            self, loc.func, hook_filter)
                                        if hcb is None:
                                            hcb = UNCOMPILABLE
                                        cache.asm[gkey] = hcb
                                    self._hooked[key] = hcb
                                if (hcb is not UNCOMPILABLE
                                        and hook.compiled_span_ok(
                                            hcb.ncand)):
                                    cb = hcb
                                else:
                                    cb = None
                        else:
                            cb = None
                        if cb is not None:
                            self.compiled_blocks += 1
                            for step in cb.steps:
                                step(self)
                            loc.index = cb.term_index
                            next_loc = cb.term(self, loc)
                            if next_loc is None:  # program exit
                                return wrap_signed32(self.get_gpr("rax"))
                            loc = next_loc
                            continue
                self.fallback_blocks += 1
            # Scalar loop: execute until control leaves this straight
            # line, then hand back to the outer loop (which may compile
            # the next one).
            while True:
                if recording and self.executed >= self._next_checkpoint:
                    self._take_checkpoint(loc)
                inst = insts[loc.index]
                self.executed += 1
                if self.executed > self.max_instructions:
                    raise HangTimeout(self.executed)
                if self.poison:
                    self._check_poison(inst)
                handler = ops.get(inst.opcode)
                if handler is None:
                    raise ReproError(f"cannot simulate {inst.opcode}")
                next_loc = handler(inst, loc)
                if hook is not None and (hook_filter is None
                                         or id(inst) in hook_filter):
                    hook.on_executed(inst, self)
                if next_loc is None:  # program exit
                    return wrap_signed32(self.get_gpr("rax"))
                if next_loc is not loc or next_loc.index == 0:
                    # call/ret returned a fresh location, or a taken jump
                    # reset this one: new straight line.
                    loc = next_loc
                    break
                loc = next_loc
                if loc.index >= len(insts):
                    break  # fell off the block: outer loop normalizes

    # -- poison / activation -----------------------------------------------------
    def _check_poison(self, inst: MInst) -> None:
        uses, defs = self._meta[id(inst)]
        poison = self.poison
        for target in uses:
            if target in poison:
                self.fault_activated = True
        for target in defs:
            poison.pop(target, None)

    def poison_target(self, target: Tuple[str, str]) -> None:
        self.poison[target] = True

    # -- operand helpers --------------------------------------------------------
    def _mem_addr(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.sym is not None:
            addr += self.global_addr[mem.sym]
        if mem.base is not None:
            addr += self.get_gpr(mem.base.name)  # type: ignore[union-attr]
        if mem.index is not None:
            addr += self.get_gpr(mem.index.name) * mem.scale  # type: ignore[union-attr]
        return addr & MASK64

    def _read_int_operand(self, op, width: int) -> int:
        """Unsigned value of a GPR/Imm/Mem operand at the given width."""
        mask = (1 << width) - 1
        if isinstance(op, Reg):
            return self.get_gpr(op.name) & mask
        if isinstance(op, Imm):
            return op.value & mask
        if isinstance(op, GlobalAddr):
            return self.global_addr[op.name] & mask
        if isinstance(op, Mem):
            addr = self._mem_addr(op)
            nbytes = width // 8
            self.last_read = (self.executed, addr, nbytes)
            return self.memory.read_int(addr, nbytes, signed=False)
        raise ReproError(f"bad integer operand {op!r}")

    def _read_double_operand(self, op) -> float:
        if isinstance(op, Reg):
            return self.get_xmm_double(op.name)
        if isinstance(op, Mem):
            addr = self._mem_addr(op)
            self.last_read = (self.executed, addr, 8)
            return self.memory.read_double(addr)
        raise ReproError(f"bad double operand {op!r}")

    def _write_gpr_or_mem(self, op, value: int, width: int) -> None:
        value &= (1 << width) - 1
        if isinstance(op, Reg):
            self.set_gpr(op.name, value)  # zero-extend (SimX86 convention)
        elif isinstance(op, Mem):
            self.memory.write_int(self._mem_addr(op), width // 8, value)
        else:
            raise ReproError(f"bad destination {op!r}")

    def _push(self, value: int) -> None:
        rsp = (self.get_gpr("rsp") - 8) & MASK64
        self.memory.write_int(rsp, 8, value & MASK64)
        self.set_gpr("rsp", rsp)

    def _pop(self) -> int:
        rsp = self.get_gpr("rsp")
        value = self.memory.read_int(rsp, 8, signed=False)
        self.last_read = (self.executed, rsp, 8)
        self.set_gpr("rsp", (rsp + 8) & MASK64)
        return value

    # -- flags --------------------------------------------------------------------
    def _set_flags_logic(self, result: int, width: int) -> None:
        mask = (1 << width) - 1
        r = result & mask
        self.flags["CF"] = 0
        self.flags["OF"] = 0
        self.flags["ZF"] = 1 if r == 0 else 0
        self.flags["SF"] = (r >> (width - 1)) & 1
        self.flags["PF"] = _PARITY[r & 0xFF]

    def _set_flags_sub(self, a: int, b: int, width: int) -> None:
        mask = (1 << width) - 1
        r = (a - b) & mask
        self.flags["ZF"] = 1 if r == 0 else 0
        self.flags["SF"] = (r >> (width - 1)) & 1
        self.flags["CF"] = 1 if (a & mask) < (b & mask) else 0
        self.flags["OF"] = ((a ^ b) & (a ^ r)) >> (width - 1) & 1
        self.flags["PF"] = _PARITY[r & 0xFF]

    def _set_flags_add(self, a: int, b: int, width: int) -> None:
        mask = (1 << width) - 1
        full = (a & mask) + (b & mask)
        r = full & mask
        self.flags["ZF"] = 1 if r == 0 else 0
        self.flags["SF"] = (r >> (width - 1)) & 1
        self.flags["CF"] = 1 if full > mask else 0
        self.flags["OF"] = ((a ^ r) & (b ^ r)) >> (width - 1) & 1
        self.flags["PF"] = _PARITY[r & 0xFF]

    def _set_flags_ucomisd(self, a: float, b: float) -> None:
        unordered = (a != a) or (b != b)
        self.flags["OF"] = 0
        self.flags["SF"] = 0
        if unordered:
            self.flags["ZF"] = 1
            self.flags["PF"] = 1
            self.flags["CF"] = 1
        else:
            self.flags["ZF"] = 1 if a == b else 0
            self.flags["PF"] = 0
            self.flags["CF"] = 1 if a < b else 0

    # -- opcode handlers ----------------------------------------------------------
    def _step(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        """Single-instruction dispatch (kept for tests/tools; the main loop
        uses the bound-method table directly)."""
        handler = self._ops.get(inst.opcode)
        if handler is None:
            raise ReproError(f"cannot simulate {inst.opcode}")
        return handler(inst, loc)

    def _op_mov(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        w = inst.width
        self._write_gpr_or_mem(dst, self._read_int_operand(src, w), w)
        return self._advance(loc)

    def _op_movx(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        w = inst.width
        sw = inst.src_width
        raw = self._read_int_operand(src, sw)
        if inst.opcode == "movsx" and raw >> (sw - 1) & 1:
            raw |= ((1 << w) - 1) ^ ((1 << sw) - 1)
        self.set_gpr(dst.name, raw & ((1 << w) - 1))
        return self._advance(loc)

    def _op_lea(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, mem = inst.operands
        self.set_gpr(dst.name, self._mem_addr(mem))
        return self._advance(loc)

    def _op_imul3(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src, imm = inst.operands
        w = inst.width
        mask = (1 << w) - 1
        a = wrap_signed(self._read_int_operand(src, w), w)
        r = (a * imm.value) & mask
        self._set_flags_logic(r, w)
        self.set_gpr(dst.name, r)
        return self._advance(loc)

    def _op_alu(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        op = inst.opcode
        w = inst.width
        dst, src = inst.operands
        a = self._read_int_operand(dst, w)
        b = self._read_int_operand(src, w)
        mask = (1 << w) - 1
        if op == "add":
            r = (a + b) & mask
            self._set_flags_add(a, b, w)
        elif op == "sub":
            r = (a - b) & mask
            self._set_flags_sub(a, b, w)
        elif op == "imul":
            r = (wrap_signed(a, w) * wrap_signed(b, w)) & mask
            self._set_flags_logic(r, w)
        else:
            r = {"and": a & b, "or": a | b, "xor": a ^ b}[op] & mask
            self._set_flags_logic(r, w)
        self._write_gpr_or_mem(dst, r, w)
        return self._advance(loc)

    def _op_neg(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        (dst,) = inst.operands
        w = inst.width
        a = self._read_int_operand(dst, w)
        r = (-a) & ((1 << w) - 1)
        self._set_flags_sub(0, a, w)
        self._write_gpr_or_mem(dst, r, w)
        return self._advance(loc)

    def _op_not(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        (dst,) = inst.operands
        w = inst.width
        a = self._read_int_operand(dst, w)
        self._write_gpr_or_mem(dst, ~a, w)
        return self._advance(loc)

    def _op_shift(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        op = inst.opcode
        w = inst.width
        dst, cnt = inst.operands
        a = self._read_int_operand(dst, w)
        count = self._read_int_operand(cnt, 64) & (63 if w == 64 else 31)
        if op == "shl":
            r = (a << count) & ((1 << w) - 1)
        elif op == "shr":
            r = a >> count
        else:
            r = (wrap_signed(a, w) >> count) & ((1 << w) - 1)
        self._set_flags_logic(r, w)
        self._write_gpr_or_mem(dst, r, w)
        return self._advance(loc)

    def _op_sign_extend_acc(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        if inst.opcode == "cdq":
            sign = (self.get_gpr("rax") >> 31) & 1
            self.set_gpr("rdx", 0xFFFF_FFFF if sign else 0)
        else:  # cqo
            sign = (self.get_gpr("rax") >> 63) & 1
            self.set_gpr("rdx", MASK64 if sign else 0)
        return self._advance(loc)

    def _op_idiv(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        (src,) = inst.operands
        w = inst.width
        divisor = wrap_signed(self._read_int_operand(src, w), w)
        lo = self.get_gpr("rax") & ((1 << w) - 1)
        hi = self.get_gpr("rdx") & ((1 << w) - 1)
        dividend = wrap_signed((hi << w) | lo, 2 * w)
        if divisor == 0:
            raise Trap(TrapKind.DIVIDE_ERROR, "idiv by zero")
        q = abs(dividend) // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            q = -q
        if not (-(1 << (w - 1)) <= q < (1 << (w - 1))):
            raise Trap(TrapKind.DIVIDE_ERROR, "idiv overflow")
        rem = dividend - q * divisor
        self.set_gpr("rax", q & ((1 << w) - 1))
        self.set_gpr("rdx", rem & ((1 << w) - 1))
        return self._advance(loc)

    def _op_cmp(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        w = inst.width
        a = self._read_int_operand(inst.operands[0], w)
        b = self._read_int_operand(inst.operands[1], w)
        self._set_flags_sub(a, b, w)
        return self._advance(loc)

    def _op_test(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        w = inst.width
        a = self._read_int_operand(inst.operands[0], w)
        b = self._read_int_operand(inst.operands[1], w)
        self._set_flags_logic(a & b, w)
        return self._advance(loc)

    def _op_setcc(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        (dst,) = inst.operands
        self.set_gpr(dst.name,
                     1 if evaluate_condition(inst.cond, self.flags) else 0)
        return self._advance(loc)

    def _op_cmovcc(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        w = inst.width
        if evaluate_condition(inst.cond, self.flags):
            self._write_gpr_or_mem(dst, self._read_int_operand(src, w), w)
        return self._advance(loc)

    def _op_jmp(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        return self._jump(loc, inst.operands[0])

    def _op_jcc(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        if evaluate_condition(inst.cond, self.flags):
            return self._jump(loc, inst.operands[0])
        return self._advance(loc)

    def _op_push(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        self._push(self._read_int_operand(inst.operands[0], 64))
        return self._advance(loc)

    def _op_pop(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        self.set_gpr(inst.operands[0].name, self._pop())
        return self._advance(loc)

    def _op_call(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        return self._call(loc, inst.operands[0])

    def _op_ret(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        return self._ret()

    def _op_movsd(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        if isinstance(dst, Mem):
            self.memory.write_double(self._mem_addr(dst),
                                     self._read_double_operand(src))
        else:
            self.set_xmm_double(dst.name, self._read_double_operand(src))
        return self._advance(loc)

    def _op_movq(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        if dst.name.startswith("xmm"):
            self.set_xmm(dst.name, self.get_gpr(src.name))
        else:
            self.set_gpr(dst.name, self.get_xmm(src.name) & MASK64)
        return self._advance(loc)

    def _op_sse_arith(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        a = self.get_xmm_double(dst.name)
        b = self._read_double_operand(src)
        self.set_xmm_double(dst.name, _fp_op(inst.opcode, a, b))
        return self._advance(loc)

    def _op_pxor(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        self.set_xmm(dst.name, self.get_xmm(dst.name)
                     ^ self.get_xmm(src.name))
        return self._advance(loc)

    def _op_ucomisd(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        a = self.get_xmm_double(inst.operands[0].name)
        b = self._read_double_operand(inst.operands[1])
        self._set_flags_ucomisd(a, b)
        return self._advance(loc)

    def _op_cvtsi2sd(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        w = inst.width
        value = wrap_signed(self._read_int_operand(src, w), w)
        self.set_xmm_double(dst.name, float(value))
        return self._advance(loc)

    def _op_cvttsd2si(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        dst, src = inst.operands
        value = self._read_double_operand(src)
        self.set_gpr(dst.name, _cvttsd2si(value, inst.width))
        return self._advance(loc)

    def _op_ud2(self, inst: MInst, loc: _Loc) -> Optional[_Loc]:
        raise Trap(TrapKind.BAD_JUMP, "ud2 executed")

    # -- control flow helpers ---------------------------------------------------
    def _advance(self, loc: _Loc) -> _Loc:
        loc.index += 1
        return loc

    def _jump(self, loc: _Loc, label: Label) -> _Loc:
        target = loc.func.block_index.get(id(label.block))
        if target is None:
            raise Trap(TrapKind.BAD_JUMP, label.block.name)
        loc.block = target
        loc.index = 0
        return loc

    def _call(self, loc: _Loc, ref: FuncRef) -> Optional[_Loc]:
        name = ref.name
        if name in self.intrinsics:
            self._intrinsic(name)
            return self._advance(loc)
        rec = self.funcs.get(name)
        if rec is None:
            raise Trap(TrapKind.BAD_JUMP, f"call to unknown {name}")
        if self.call_depth >= self.max_call_depth:
            raise Trap(TrapKind.CALL_DEPTH, name)
        site = (loc.func.name, loc.block, loc.index + 1)
        token = self._site_tokens.get(site)
        if token is None:
            token = CODE_BASE + 16 * (len(self._site_tokens) + 1)
            self._site_tokens[site] = token
            self._token_sites[token] = site
        self._push(token)
        self.call_depth += 1
        return _Loc(rec, 0, 0)

    def _ret(self) -> Optional[_Loc]:
        token = self._pop()
        self.call_depth -= 1
        if token == EXIT_TOKEN:
            if self.call_depth == 0:
                return None
            raise Trap(TrapKind.BAD_RETURN, "exit token mid-stack")
        site = self._token_sites.get(token)
        if site is None:
            raise Trap(TrapKind.BAD_RETURN, f"{token:#x}")
        func_name, block, index = site
        return _Loc(self.funcs[func_name], block, index)

    # -- intrinsics ---------------------------------------------------------------
    def _intrinsic(self, name: str) -> None:
        if name == "print_int":
            self.output.print_int(wrap_signed32(self.get_gpr("rdi")))
        elif name == "print_long":
            self.output.print_long(wrap_signed(self.get_gpr("rdi"), 64))
        elif name == "print_double":
            self.output.print_double(self.get_xmm_double("xmm0"))
        elif name == "print_char":
            self.output.print_char(self.get_gpr("rdi") & 0xFF)
        elif name == "print_str":
            self.output.print_str(self.memory.read_cstring(self.get_gpr("rdi")))
        elif name == "malloc":
            self.set_gpr("rax", self.heap.malloc(
                wrap_signed(self.get_gpr("rdi"), 64)))
        elif name == "free":
            self.heap.free(self.get_gpr("rdi"))
        else:
            raise ReproError(f"unknown intrinsic {name}")


# -- helpers ---------------------------------------------------------------------

def wrap_signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= (1 << (bits - 1)):
        value -= (1 << bits)
    return value


def wrap_signed32(value: int) -> int:
    return wrap_signed(value, 32)


def _fp_op(op: str, a: float, b: float) -> float:
    import math

    if op == "addsd":
        return a + b
    if op == "subsd":
        return a - b
    if op == "mulsd":
        return a * b
    # divsd
    if b == 0.0:
        if a == 0.0 or a != a:
            return float("nan")
        return float("inf") if (a > 0) == (math.copysign(1.0, b) > 0) \
            else float("-inf")
    return a / b


def _cvttsd2si(value: float, width: int) -> int:
    indefinite = 1 << (width - 1)  # unsigned encoding of INT_MIN
    if value != value or value in (float("inf"), float("-inf")):
        return indefinite
    truncated = int(value)
    if not (-(1 << (width - 1)) <= truncated < (1 << (width - 1))):
        return indefinite
    return truncated & ((1 << width) - 1)


def _poison_meta(inst: MInst) -> Tuple[Tuple, Tuple]:
    """Static (uses, defs) poison-target tuples for activation tracking."""
    uses: List[Tuple[str, str]] = []
    defs: List[Tuple[str, str]] = []
    for r in inst.reg_uses():
        if isinstance(r, Reg):
            cls = "xmm" if r.name.startswith("xmm") else "gpr"
            uses.append((cls, r.name))
    for name in inst.flags_read():
        uses.append(("flag", name))
    for r in inst.reg_defs():
        if isinstance(r, Reg):
            cls = "xmm" if r.name.startswith("xmm") else "gpr"
            defs.append((cls, r.name))
    if inst.writes_flags():
        for name in FLAG_NAMES:
            defs.append(("flag", name))
    # A conditional move does not reliably overwrite its destination, so it
    # must not clear poison.
    if inst.opcode == "cmovcc":
        defs = []
    return tuple(uses), tuple(defs)
