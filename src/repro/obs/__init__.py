"""Campaign observability: structured metrics, event tracing, run manifests.

The paper's credibility rests on 1000-trial campaigns whose internals
(activation redraws, hang-budget trips, checkpoint restores, worker
utilization) would otherwise be invisible.  This package makes campaign
mechanics cheaply measurable without ever perturbing campaign *results*:

* :mod:`repro.obs.recorder` — a near-zero-overhead :class:`Recorder`
  (counters, timers, events) that is a no-op singleton when disabled;
  the VM engines, both injectors and the campaign runner record into
  whatever recorder is active in the process.
* :mod:`repro.obs.manifest` — the per-campaign JSONL **run manifest**:
  per-trial wall time, simulated-instruction counts, checkpoint restore
  hits and skipped prefixes, redraw statistics and per-worker chunk
  utilization, merged deterministically from workers by the engine.
* :mod:`repro.obs.report` — ``python -m repro.obs.report`` summarizes one
  or more manifests (per-cell timing tables, checkpoint savings, worker
  balance).

Tracing is inert by construction: it never touches the per-trial RNG
streams, so campaign outcomes are bit-identical with tracing enabled or
disabled, at any job count (proven by ``tests/obs/test_parity.py``).

See ``OBSERVABILITY.md`` for the full schema and CLI reference.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION, RunManifest, manifest_filename, read_manifest,
    write_manifest,
)
from repro.obs.recorder import (
    NULL_RECORDER, NullRecorder, Recorder, get_recorder, recording,
    set_recorder,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RunManifest",
    "get_recorder",
    "manifest_filename",
    "read_manifest",
    "recording",
    "set_recorder",
    "write_manifest",
]
