"""Per-campaign JSONL run manifests.

A manifest is the auditable record of one (tool, category) campaign: what
was configured, what the preparation phase cost, what every trial did, how
the work was spread over workers, and what the totals were.  Every
``BENCH_*.json`` perf claim can be re-derived from the manifest alone.

One manifest is one JSONL file.  Line kinds, in file order:

``manifest``
    Header: ``schema`` (see :data:`MANIFEST_SCHEMA_VERSION`), ``workload``,
    ``tool``, ``category``, ``trials`` (the *requested* budget), ``seed``,
    ``jobs``, ``hang_factor``, ``max_attempts_factor``, ``model``,
    ``checkpoint_stride``, ``ci_margin`` (early-stopping target, 0 = off)
    and ``round_size`` (resolved scheduling round, 0 when not adaptive).
``setup``
    Preparation phase: ``golden_instructions``, ``dynamic_candidates``,
    ``checkpoints`` (recorded golden checkpoints), ``prep_executions`` /
    ``prep_instructions`` (whole-program runs and instructions this
    campaign's preparation actually executed — 0 when the injector's
    memoised golden/profiling runs were reused).
``trial``
    One per trial slot, ordered by ``index``: ``outcome`` (an
    ``Outcome.value``, or ``"gave_up"`` when every redraw failed to
    activate), ``k`` (injected dynamic instance, None when gave up),
    ``runs`` (injection runs including redraws), ``redraws``, ``wall_s``,
    ``instructions`` (simulated, i.e. post-checkpoint suffix only),
    ``ckpt_restores`` and ``ckpt_skipped`` (golden-prefix instructions
    skipped via checkpoint restore).
``round``
    One per scheduling round, ordered by ``round``: the stop decision at
    its boundary — ``executed`` (slots so far), ``activated``, ``margins``
    (outcome -> Wilson CI half-width), ``max_margin``, ``stop``.
``bucket``
    One per non-empty (round, checkpoint) scheduling bucket: ``round``,
    ``checkpoint`` (golden checkpoint index, -1 = cold start) and
    ``slots`` (trials that restore from that shared snapshot).
``batch``
    One per batch group (batched dispatch only, see
    :mod:`repro.vm.batch`): ``round``, ``group`` (per-round ordinal),
    ``checkpoint`` (the group's bucket, -1 = cold start), ``lanes``
    (slots requested), ``forked`` (lanes served by a COW fork of the
    shared sweep), ``detached`` (lanes that fell back to the scalar
    path), ``shared_instructions`` (instructions the one shared sweep
    executed for the whole group), ``lane_instructions`` (post-fork
    suffix instructions across all lanes), ``sweep_wall_s``, plus the
    COW memory counters ``forks`` / ``pages_shared`` / ``pages_cow``.
``compile``
    Per-program block-compilation statistics (one per compiled program):
    ``tool``, ``enabled`` (False under ``--no-compile``),
    ``blocks_compiled`` (distinct segments compiled into closure
    sequences), ``superinstructions`` (fused compare+branch / load+binop
    pairs among them) and ``compile_wall_s`` (one-time compilation cost,
    shared by every run over the program).
``chunk``
    One per engine work chunk (parallel campaigns), ordered by ``chunk``:
    ``worker`` (PID), ``slots`` (slot indices), ``wall_s``; batched
    chunks also list their ``batches`` (group ids).
``shard``
    One per service shard (campaigns run through
    :mod:`repro.service`), ordered by ``(round, shard)``: ``round``,
    ``shard`` (per-round ordinal), ``worker`` (the claiming worker's
    ``host:pid`` name or PID), ``slots`` (slot indices the shard
    executed), ``wall_s``, ``primed`` (golden run adopted from a store
    artifact instead of executed) and ``prep_executions`` /
    ``prep_instructions`` (preparation cost this shard actually paid —
    0 on every shard that reused a memoised or primed injector).
    Sharded campaigns additionally carry a ``service`` block in the
    header: ``shards`` (requested split) and, when run through the job
    queue, ``store`` and ``job``.
``summary``
    Totals: ``wall_s``, ``activated``, ``not_activated``, ``counts``
    (outcome histogram), ``instructions`` (sum of trial instructions),
    ``ckpt_restores``, ``ckpt_skipped``, the early-stopping verdict
    (``trials_requested``, ``n_stop``, ``stopped``, ``trials_saved``,
    ``margin_at_stop``, ``rounds``), the batching totals
    (``batch_groups``, ``batch_shared_instructions``, ``batch_lanes``,
    ``batch_detached``), a ``compile`` block (the compile-record fields
    plus runtime dispatch counts ``compiled_blocks`` /
    ``fallback_blocks``, merged over workers), plus the merged recorder
    ``counters``.

The accounting identity that makes manifests auditable: for a fresh
injector, ``setup.prep_instructions`` plus the sum of per-trial
``instructions`` plus the sum of per-batch ``shared_instructions``
equals the injector's ``instructions_simulated`` total — the number
``benchmarks/bench_checkpoint.py`` and ``benchmarks/bench_batch.py``
report.  (Without batching the batch term is zero and the identity is
the pre-v3 one.)

Workers never write manifests; they return per-slot statistics to the
engine, which merges them **deterministically** (trials sorted by slot
index, chunks by chunk index) so two runs of the same campaign produce
manifests that differ only in wall-clock fields.

Forward compatibility: record kinds this build does not know are
preserved verbatim in :attr:`RunManifest.extras` instead of rejected, so
a newer writer's manifests stay readable by older report tooling.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError

#: Bump when a line kind gains/loses required fields or changes meaning.
#: v2: adaptive campaigns — ``round``/``bucket`` record kinds, header
#: gained ``ci_margin``/``round_size``, summary gained the early-stopping
#: verdict fields.
#: v3: batched suffix execution — ``batch`` record kind, header gained
#: ``batch``, summary gained the batching totals; unknown record kinds
#: are now preserved (``extras``) instead of rejected.
#: v4: block-compiled execution — ``compile`` record kind, summary gained
#: the ``compile`` block.
#: v5: fault-model registry — the header ``model`` field now carries the
#: registry spec of any registered model (not just the paper's
#: ``bitflip``), and non-default models are part of the canonical
#: manifest filename so sweep cells never overwrite each other.
#: v6: campaign service — ``shard`` record kind (one per service shard,
#: with worker attribution and per-shard preparation accounting) and an
#: optional ``service`` header block on sharded campaigns.
MANIFEST_SCHEMA_VERSION = 6


@dataclass
class RunManifest:
    """In-memory form of one campaign manifest."""

    header: dict
    setup: dict
    trials: List[dict] = field(default_factory=list)
    chunks: List[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    rounds: List[dict] = field(default_factory=list)
    buckets: List[dict] = field(default_factory=list)
    batches: List[dict] = field(default_factory=list)
    compiles: List[dict] = field(default_factory=list)
    shards: List[dict] = field(default_factory=list)
    #: Records of kinds this build does not know (newer writers); kept
    #: verbatim, each as ``{"kind": ..., **fields}``, in file order.
    extras: List[dict] = field(default_factory=list)

    @property
    def schema(self) -> int:
        return self.header.get("schema", 0)

    def lines(self) -> List[dict]:
        """The manifest as ordered JSONL records (deterministic order:
        header, setup, trials by index, rounds by round id, buckets by
        (round, checkpoint), batches by (round, group), compiles by tool,
        chunks by chunk id, shards by (round, shard), extras in file
        order, summary)."""
        out = [dict(self.header, kind="manifest"),
               dict(self.setup, kind="setup")]
        out += [dict(t, kind="trial")
                for t in sorted(self.trials, key=lambda t: t["index"])]
        out += [dict(r, kind="round")
                for r in sorted(self.rounds, key=lambda r: r["round"])]
        out += [dict(b, kind="bucket")
                for b in sorted(self.buckets,
                                key=lambda b: (b["round"], b["checkpoint"]))]
        out += [dict(b, kind="batch")
                for b in sorted(self.batches,
                                key=lambda b: (b["round"], b["group"]))]
        out += [dict(c, kind="compile")
                for c in sorted(self.compiles,
                                key=lambda c: c.get("tool", ""))]
        out += [dict(c, kind="chunk")
                for c in sorted(self.chunks, key=lambda c: c["chunk"])]
        out += [dict(s, kind="shard")
                for s in sorted(self.shards,
                                key=lambda s: (s["round"], s["shard"]))]
        out += [dict(e) for e in self.extras]
        out.append(dict(self.summary, kind="summary"))
        return out

    # -- derived views used by the report CLI -------------------------------
    def total_trial_instructions(self) -> int:
        return sum(t["instructions"] for t in self.trials)

    def total_batch_shared(self) -> int:
        """Instructions executed by shared batch sweeps (0 when the
        campaign did not batch)."""
        return sum(b["shared_instructions"] for b in self.batches)

    def total_instructions(self) -> int:
        """Preparation + trial + shared-sweep instructions: the
        injector's ``instructions_simulated`` for a fresh injector."""
        return self.setup.get("prep_instructions", 0) + \
            self.total_trial_instructions() + self.total_batch_shared()

    def total_skipped(self) -> int:
        return sum(t["ckpt_skipped"] for t in self.trials)


def manifest_filename(workload: str, tool: str, category: str,
                      trials: int, seed: int, checkpoint_stride: int = 0,
                      ci_margin: float = 0.0,
                      model: str = "bitflip") -> str:
    """Canonical manifest name for one campaign cell.  The checkpoint
    stride is part of the name so the same cell measured under different
    strides (e.g. by ``bench_checkpoint``) never overwrites itself; the
    early-stopping margin and a non-default fault model likewise,
    appended only when set so default names are unchanged (and sweep
    cells that differ only in fault model never collide)."""
    name = (f"manifest-{workload}-{tool}-{category}"
            f"-t{trials}-s{seed}-c{checkpoint_stride}")
    if ci_margin:
        name += f"-ci{ci_margin:g}"
    if model != "bitflip":
        name += f"-m{model}"
    return name + ".jsonl"


def write_manifest(path: str, manifest: RunManifest) -> str:
    """Write one manifest as JSONL; creates parent directories."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        for line in manifest.lines():
            f.write(json.dumps(line, sort_keys=True))
            f.write("\n")
    return path


def read_manifest(path: str) -> RunManifest:
    """Parse one JSONL manifest, validating structure and schema version."""
    header: Optional[dict] = None
    setup: dict = {}
    trials: List[dict] = []
    chunks: List[dict] = []
    summary: dict = {}
    rounds: List[dict] = []
    buckets: List[dict] = []
    batches: List[dict] = []
    compiles: List[dict] = []
    shards: List[dict] = []
    extras: List[dict] = []
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from None
            kind = record.pop("kind", None)
            if kind == "manifest":
                if record.get("schema") != MANIFEST_SCHEMA_VERSION:
                    raise ReproError(
                        f"{path}: unsupported manifest schema "
                        f"{record.get('schema')!r} (this build reads "
                        f"schema {MANIFEST_SCHEMA_VERSION})")
                header = record
            elif kind == "setup":
                setup = record
            elif kind == "trial":
                trials.append(record)
            elif kind == "round":
                rounds.append(record)
            elif kind == "bucket":
                buckets.append(record)
            elif kind == "batch":
                batches.append(record)
            elif kind == "compile":
                compiles.append(record)
            elif kind == "chunk":
                chunks.append(record)
            elif kind == "shard":
                shards.append(record)
            elif kind == "summary":
                summary = record
            elif kind is None:
                raise ReproError(
                    f"{path}:{lineno}: record without a kind field")
            else:
                # Unknown kinds are a newer writer's records, not an
                # error: keep them verbatim so re-serializing is lossless.
                extras.append(dict(record, kind=kind))
    if header is None:
        raise ReproError(f"{path}: no manifest header record")
    return RunManifest(header=header, setup=setup, trials=trials,
                       chunks=chunks, summary=summary, rounds=rounds,
                       buckets=buckets, batches=batches, compiles=compiles,
                       shards=shards, extras=extras)


def merge_counters(dicts: List[Dict[str, int]]) -> Dict[str, int]:
    """Sum recorder counter snapshots from several workers."""
    merged: Dict[str, int] = {}
    for d in dicts:
        for name, value in d.items():
            merged[name] = merged.get(name, 0) + value
    return merged
