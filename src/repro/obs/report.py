"""Summarize campaign run manifests.

    python -m repro.obs.report results/obs/*.jsonl
    python -m repro.obs.report manifest.jsonl --json

Reads one or more JSONL manifests (see :mod:`repro.obs.manifest`) and
prints seven tables: per-cell timing, early stopping, checkpoint savings,
batched execution, compiled execution, worker balance, and service
sharding.  ``--json`` emits the same numbers machine-readably.
Exits non-zero if any manifest is missing or unparsable — or claims an
early stop its own round records do not justify (a stop whose final
margin is not below the configured target), so CI can gate on manifest
health.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.report import format_table
from repro.obs.manifest import RunManifest, read_manifest


def _cell(manifest: RunManifest) -> str:
    h = manifest.header
    cell = f"{h.get('workload', '?')}/{h['tool']}/{h['category']}"
    # Tag non-default fault models so sweep manifests stay tellable
    # apart; bitflip cells keep their pre-registry cell names.
    model = h.get("model", "bitflip")
    if model != "bitflip":
        cell += f"[{model}]"
    return cell


def summarize(manifest: RunManifest) -> dict:
    """Flatten one manifest into the report's numbers."""
    h = manifest.header
    s = manifest.summary
    trials = manifest.trials
    n = len(trials) or 1
    wall = s.get("wall_s", 0.0)
    runs = sum(t["runs"] for t in trials)
    trial_instr = manifest.total_trial_instructions()
    skipped = manifest.total_skipped()
    restores = sum(t["ckpt_restores"] for t in trials)
    counters = s.get("counters") or {}
    comp = s.get("compile") or {}
    shard_busy: dict = {}
    for shard in manifest.shards:
        w = shard_busy.setdefault(shard["worker"], 0.0)
        shard_busy[shard["worker"]] = w + shard["wall_s"]
    workers = {}
    for chunk in manifest.chunks:
        w = workers.setdefault(chunk["worker"], {"chunks": 0, "slots": 0,
                                                 "busy_s": 0.0})
        w["chunks"] += 1
        w["slots"] += len(chunk["slots"])
        w["busy_s"] += chunk["wall_s"]
    busy = [w["busy_s"] for w in workers.values()]
    return {
        "cell": _cell(manifest),
        "model": h.get("model", "bitflip"),
        "trials": h["trials"],
        "seed": h["seed"],
        "activated": s.get("activated", 0),
        "not_activated": s.get("not_activated", 0),
        "injection_runs": runs,
        "wall_s": wall,
        "trials_per_sec": (h["trials"] / wall) if wall else 0.0,
        "mean_trial_ms": 1000.0 * sum(t["wall_s"] for t in trials) / n,
        "golden_instructions": manifest.setup.get("golden_instructions", 0),
        "prep_instructions": manifest.setup.get("prep_instructions", 0),
        "trial_instructions": trial_instr,
        "total_instructions": manifest.total_instructions(),
        "ckpt_restores": restores,
        "ckpt_skipped": skipped,
        # What the same trials would have simulated without checkpoint
        # resume, over what they actually simulated.
        "ckpt_reduction": ((trial_instr + skipped) / trial_instr
                           if trial_instr else 1.0),
        "workers": {str(pid): w for pid, w in sorted(workers.items())},
        "worker_balance": (min(busy) / max(busy)
                           if busy and max(busy) > 0 else 1.0),
        # Early stopping (schema v2; absent fields default to "not
        # adaptive" so the report keeps working on minimal manifests).
        "ci_margin": h.get("ci_margin", 0.0),
        "trials_requested": s.get("trials_requested", h["trials"]),
        "n_stop": s.get("n_stop", len(trials)),
        "stopped": s.get("stopped", False),
        "trials_saved": s.get("trials_saved", 0),
        "margin_at_stop": s.get("margin_at_stop"),
        "rounds": s.get("rounds", 0),
        "snapshot_decodes": counters.get("snapshot.decodes", 0),
        "snapshot_decoded_hits": counters.get("snapshot.decoded_hits", 0),
        # Batched execution (schema v3; zeros on non-batched manifests).
        "batch": h.get("batch", 0),
        "batch_groups": s.get("batch_groups", len(manifest.batches)),
        "batch_lanes": s.get("batch_lanes", 0),
        "batch_detached": s.get("batch_detached", 0),
        "batch_shared_instructions": s.get("batch_shared_instructions",
                                           manifest.total_batch_shared()),
        "cow_pages_shared": sum(b.get("pages_shared", 0)
                                for b in manifest.batches),
        "cow_pages_cow": sum(b.get("pages_cow", 0)
                             for b in manifest.batches),
        # Compiled execution (schema v4; absent block = pre-compile
        # writer, reported as disabled).
        "compile_enabled": comp.get("enabled", False),
        "blocks_compiled": comp.get("blocks_compiled", 0),
        "superinstructions": comp.get("superinstructions", 0),
        "compile_wall_s": comp.get("compile_wall_s", 0.0),
        "compiled_blocks": comp.get("compiled_blocks", 0),
        "fallback_blocks": comp.get("fallback_blocks", 0),
        # Service sharding (schema v6; empty on local manifests).
        "service_shards": (h.get("service") or {}).get("shards", 0),
        "shard_records": len(manifest.shards),
        "shard_workers": len(shard_busy),
        "shard_slots": sum(len(s["slots"]) for s in manifest.shards),
        "shards_primed": sum(1 for s in manifest.shards
                             if s.get("primed")),
        "shard_prep_executions": sum(s.get("prep_executions", 0)
                                     for s in manifest.shards),
        "shard_balance": (min(shard_busy.values())
                          / max(shard_busy.values())
                          if shard_busy and max(shard_busy.values()) > 0
                          else 1.0),
    }


def validate_stop_claims(manifest: RunManifest) -> List[str]:
    """Cross-check a manifest's early-stopping claim.

    A summary that says ``stopped`` must be backed by a nonzero target,
    a recorded ``margin_at_stop`` strictly below it, and a final round
    record that agrees.  Returns problem strings (empty = healthy)."""
    h, s = manifest.header, manifest.summary
    if not s.get("stopped"):
        return []
    problems = []
    target = h.get("ci_margin", 0.0)
    margin = s.get("margin_at_stop")
    if not target:
        problems.append("claims an early stop but ci_margin is 0")
    elif margin is None:
        problems.append("claims an early stop without a margin_at_stop")
    elif margin >= target:
        problems.append(f"claims an early stop at margin {margin} "
                        f">= target {target}")
    if manifest.rounds:
        final = max(manifest.rounds, key=lambda r: r.get("round", 0))
        if not final.get("stop"):
            problems.append("summary claims a stop but the final round "
                            "record does not")
    return problems


def render(summaries: List[dict]) -> str:
    timing_rows = [[
        s["cell"], s["trials"], s["activated"], s["injection_runs"],
        f"{s['wall_s']:.2f}s", f"{s['trials_per_sec']:.1f}",
        f"{s['mean_trial_ms']:.1f}ms",
    ] for s in summaries]
    sections = [format_table(
        ["Cell", "Trials", "Activated", "Runs", "Wall", "Trials/s",
         "Mean trial"],
        timing_rows, title="Campaign timing")]

    stop_rows = []
    for s in summaries:
        adaptive = s["ci_margin"] > 0
        margin = s["margin_at_stop"]
        stop_rows.append([
            s["cell"],
            f"{s['ci_margin']:g}" if adaptive else "off",
            s["trials_requested"], s["n_stop"],
            s["trials_saved"] if adaptive else "-",
            f"{margin:.4f}" if margin is not None else "-",
            s["rounds"] or "-",
            "yes" if s["stopped"] else "no",
        ])
    sections.append(format_table(
        ["Cell", "Target", "Requested", "n_stop", "Saved", "Margin@stop",
         "Rounds", "Stopped"],
        stop_rows, title="Early stopping (Wilson-CI margin)"))

    ckpt_rows = [[
        s["cell"], s["golden_instructions"], s["trial_instructions"],
        s["ckpt_restores"], s["ckpt_skipped"],
        f"{s['ckpt_reduction']:.2f}x",
    ] for s in summaries]
    sections.append(format_table(
        ["Cell", "Golden instr", "Trial instr", "Restores", "Skipped",
         "Reduction"],
        ckpt_rows,
        title="Checkpoint savings (simulated instructions)"))

    batch_rows = []
    for s in summaries:
        if not s["batch"]:
            batch_rows.append([s["cell"], "off", "-", "-", "-", "-", "-",
                               "-"])
            continue
        lanes = s["batch_lanes"] + s["batch_detached"]
        batch_rows.append([
            s["cell"], s["batch"], s["batch_groups"], s["batch_lanes"],
            s["batch_detached"],
            f"{s['batch_lanes'] / lanes:.0%}" if lanes else "-",
            s["batch_shared_instructions"],
            (f"{s['cow_pages_cow'] / s['cow_pages_shared']:.0%}"
             if s["cow_pages_shared"] else "-"),
        ])
    sections.append(format_table(
        ["Cell", "Batch", "Groups", "Forked", "Detached", "Fork rate",
         "Shared instr", "COW rate"],
        batch_rows,
        title="Batched execution (shared sweeps + COW forks)"))

    compile_rows = []
    for s in summaries:
        if not s["compile_enabled"]:
            compile_rows.append([s["cell"], "off", "-", "-", "-", "-", "-"])
            continue
        dispatched = s["compiled_blocks"] + s["fallback_blocks"]
        fused = s["blocks_compiled"]
        compile_rows.append([
            s["cell"], s["blocks_compiled"], s["superinstructions"],
            f"{s['superinstructions'] / fused:.0%}" if fused else "-",
            (f"{s['fallback_blocks'] / dispatched:.1%}"
             if dispatched else "-"),
            f"{s['compile_wall_s'] * 1000:.1f}ms",
            (f"{s['compile_wall_s'] / s['wall_s']:.2%}"
             if s["wall_s"] else "-"),
        ])
    sections.append(format_table(
        ["Cell", "Blocks", "Fused", "Fused share", "Fallback rate",
         "Compile", "Overhead"],
        compile_rows,
        title="Compiled execution (threaded-code blocks)"))

    balance_rows = []
    for s in summaries:
        workers = s["workers"]
        if not workers:
            balance_rows.append([s["cell"], "in-process", "-", "-", "-"])
            continue
        busiest = max(workers.values(), key=lambda w: w["busy_s"])
        balance_rows.append([
            s["cell"], len(workers),
            sum(w["chunks"] for w in workers.values()),
            f"{busiest['busy_s']:.2f}s",
            f"{s['worker_balance']:.2f}",
        ])
    sections.append(format_table(
        ["Cell", "Workers", "Chunks", "Busiest", "Balance (min/max)"],
        balance_rows,
        title="Worker utilization"))

    shard_rows = []
    for s in summaries:
        if not s["shard_records"]:
            shard_rows.append([s["cell"], "local", "-", "-", "-", "-", "-"])
            continue
        shard_rows.append([
            s["cell"], s["service_shards"], s["shard_records"],
            s["shard_workers"],
            f"{s['shards_primed']}/{s['shard_records']}",
            s["shard_prep_executions"],
            f"{s['shard_balance']:.2f}",
        ])
    sections.append(format_table(
        ["Cell", "Shards", "Executed", "Workers", "Primed", "Prep runs",
         "Balance"],
        shard_rows,
        title="Service sharding (round-barrier shard protocol)"))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("manifests", nargs="+",
                        help="JSONL run manifest(s) to summarize")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    args = parser.parse_args(argv)

    summaries = []
    unhealthy = False
    for path in args.manifests:
        try:
            manifest = read_manifest(path)
            summaries.append(summarize(manifest))
        except (OSError, ReproError, KeyError) as exc:
            print(f"error: cannot read manifest {path}: {exc}",
                  file=sys.stderr)
            return 1
        for problem in validate_stop_claims(manifest):
            print(f"error: {path}: {problem}", file=sys.stderr)
            unhealthy = True
    try:
        if args.json:
            print(json.dumps(summaries, indent=1, sort_keys=True))
        else:
            print(render(summaries))
    except BrokenPipeError:  # e.g. `... | head`: silence the shutdown flush
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1 if unhealthy else 0
    return 1 if unhealthy else 0


if __name__ == "__main__":
    sys.exit(main())
