"""The Recorder: process-local counters, timers and events.

Design constraints, in order:

1. **Inert.**  Recording must never change campaign results.  The recorder
   only *observes* (integer counters, wall-clock timers, event dicts); it
   never touches RNG streams, simulator state or control flow.
2. **Near-zero overhead when disabled.**  The hot paths (one call per
   whole-program run, a handful per trial) go through the module-level
   :data:`NULL_RECORDER` singleton whose methods are empty; the cost of
   the disabled path is one global load, one attribute check and one
   no-op call per instrumentation site.  Nothing is recorded per
   simulated instruction.
3. **Process-local.**  Each campaign worker owns its recorder; the engine
   merges worker statistics into the run manifest deterministically (by
   slot/chunk index), never by shared mutable state.

Usage::

    from repro.obs import get_recorder, recording

    with recording() as rec:
        ...                      # instrumented code runs
    rec.counters["injector.runs"]

Instrumentation sites call ``get_recorder()`` and may guard bulk work with
``rec.enabled``::

    rec = get_recorder()
    if rec.enabled:
        rec.incr("vm.ir.instructions", result.instructions)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Also the base class of :class:`Recorder`, so instrumentation sites can
    call any recorder method unconditionally.
    """

    enabled = False

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield

    def counter(self, name: str) -> int:
        return 0

    def counters_snapshot(self) -> Dict[str, int]:
        return {}


class Recorder(NullRecorder):
    """The enabled recorder: accumulates counters, timings and events.

    * ``counters`` — name -> integer sum (:meth:`incr`);
    * ``timings`` — name -> ``[count, total_seconds, max_seconds]``
      (:meth:`observe` / :meth:`timer`);
    * ``events`` — append-only list of dicts (:meth:`event`), capped at
      ``max_events`` so a long campaign cannot grow without bound.
    """

    enabled = True

    def __init__(self, max_events: int = 10_000) -> None:
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, List[float]] = {}
        self.events: List[dict] = []
        self.max_events = max_events
        self.dropped_events = 0

    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        slot = self.timings.get(name)
        if slot is None:
            self.timings[name] = [1, value, value]
        else:
            slot[0] += 1
            slot[1] += value
            if value > slot[2]:
                slot[2] = value

    def event(self, name: str, **fields) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append({"event": name, **fields})

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def counters_snapshot(self) -> Dict[str, int]:
        return dict(self.counters)


#: The disabled singleton every process starts with.
NULL_RECORDER = NullRecorder()

_active: NullRecorder = NULL_RECORDER


def get_recorder() -> NullRecorder:
    """The process's active recorder (the no-op singleton by default)."""
    return _active


def set_recorder(recorder: Optional[NullRecorder]) -> NullRecorder:
    """Install ``recorder`` (None reinstalls the no-op singleton); returns
    the previously active recorder so callers can restore it."""
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Install a live recorder for the duration of a ``with`` block."""
    rec = recorder if recorder is not None else Recorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
