"""repro: reproduction of "Quantifying the Accuracy of High-Level Fault
Injection Techniques for Hardware Faults" (DSN 2014).

The stack, bottom-up:

* :mod:`repro.minic` — C-subset front end the benchmarks are written in
* :mod:`repro.ir` — typed SSA IR modeled on LLVM IR (LLFI's level)
* :mod:`repro.backend` — SimX86 code generator (PINFI's level)
* :mod:`repro.vm` — shared memory model + IR interpreter + SimX86 simulator
* :mod:`repro.fi` — the two fault injectors, campaigns, statistics
* :mod:`repro.workloads` — the six benchmark programs (paper Table II)
* :mod:`repro.experiments` — regenerates every paper table and figure

Quickstart::

    from repro.minic import compile_source
    from repro.backend import compile_module
    from repro.fi import LLFIInjector, PINFIInjector, run_campaign

    module = compile_source(open("prog.c").read())
    program = compile_module(module)
    print(run_campaign(LLFIInjector(module), "all").summary())
    print(run_campaign(PINFIInjector(program), "all").summary())
"""

__version__ = "1.0.0"
