#!/usr/bin/env python3
"""The paper's experiment in miniature, on one benchmark.

Runs LLFI and PINFI campaigns over every instruction category on a chosen
workload and prints the per-category SDC and crash comparison — one row of
the paper's Figure 4 and Table V.

Run:  python examples/compare_injectors.py [workload] [trials]
      python examples/compare_injectors.py libquantumm 150
"""

import sys

from repro.fi import (
    CampaignConfig, LLFIInjector, PINFIInjector, run_campaign,
)
from repro.fi.categories import CATEGORIES
from repro.workloads import build, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "libquantumm"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 80
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; have {workload_names()}")

    built = build(name)
    llfi = LLFIInjector(built.module)
    pinfi = PINFIInjector(built.program)
    config = CampaignConfig(trials=trials)

    print(f"workload={name}  trials={trials}/cell "
          f"(paper used 1000)\n")
    print(f"{'category':<11} {'LLFI sdc':>14} {'PINFI sdc':>14} "
          f"{'LLFI crash':>11} {'PINFI crash':>12}  agree?")
    for category in CATEGORIES:
        try:
            a = run_campaign(llfi, category, config)
            b = run_campaign(pinfi, category, config)
        except Exception as exc:  # e.g. no candidates in this category
            print(f"{category:<11} skipped ({exc})")
            continue
        agree = "yes" if a.sdc.overlaps(b.sdc) else "NO"
        print(f"{category:<11} {a.sdc.percent():>14} {b.sdc.percent():>14} "
              f"{100 * a.crash.value:>10.0f}% {100 * b.crash.value:>11.0f}%  "
              f"{agree}")
    print("\n'agree?' = the two SDC 95% confidence intervals overlap")
    print("(the paper's criterion for LLFI being accurate for SDCs).")


if __name__ == "__main__":
    main()
