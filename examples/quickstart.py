#!/usr/bin/env python3
"""Quickstart: compile a program and inject faults with both tools.

This is the paper's core workflow in ~60 lines:

1. compile a (MiniC) program with the optimizing compiler;
2. build LLFI over the IR and PINFI over the generated assembly;
3. run fault-injection campaigns and compare the outcome distributions.

Run:  python examples/quickstart.py
"""

from repro.backend import compile_module
from repro.fi import CampaignConfig, LLFIInjector, PINFIInjector, run_campaign
from repro.minic import compile_source

SOURCE = r"""
// A little checksummed workload: matrix-vector products mod a prime.
int mat[8][8];
int vec[8];
int out[8];

int main() {
    int i; int j;
    for (i = 0; i < 8; i++) {
        vec[i] = (i * 37 + 11) % 19;
        for (j = 0; j < 8; j++)
            mat[i][j] = (i * 8 + j) * 7 % 23;
    }
    int round;
    for (round = 0; round < 6; round++) {
        for (i = 0; i < 8; i++) {
            int acc = 0;
            for (j = 0; j < 8; j++)
                acc += mat[i][j] * vec[j];
            out[i] = acc % 1000003;
        }
        for (i = 0; i < 8; i++) vec[i] = out[i];
    }
    long checksum = 0;
    for (i = 0; i < 8; i++) checksum = checksum * 131 + vec[i];
    print_str("checksum="); print_long(checksum); print_char('\n');
    return 0;
}
"""


def main() -> None:
    # Step 1: compile. `compile_module` also finalizes the IR module, so
    # both injectors see exactly the same program (the paper's fairness
    # requirement).
    module = compile_source(SOURCE)
    program = compile_module(module)

    # Step 2: the two injectors.
    llfi = LLFIInjector(module)       # high level: LLVM-IR-like
    pinfi = PINFIInjector(program)    # low level: assembly

    golden = llfi.golden()
    print(f"golden output : {golden.output.strip()}")
    print(f"IR  dynamic 'all' candidates: "
          f"{llfi.count_dynamic_candidates('all')}")
    print(f"asm dynamic 'all' candidates: "
          f"{pinfi.count_dynamic_candidates('all')}")
    print()

    # Step 3: campaigns. The paper used 1000 injections per cell; 100 keeps
    # this demo fast while still showing the shape.
    config = CampaignConfig(trials=100, seed=42)
    for injector in (llfi, pinfi):
        result = run_campaign(injector, "all", config)
        print(result.summary())

    print()
    print("Reading the result: if the two SDC percentages are within each")
    print("other's 95% CI, the high-level injector measured the program's")
    print("error resilience as accurately as the assembly-level one —")
    print("the paper's headline finding.")


if __name__ == "__main__":
    main()
