#!/usr/bin/env python3
"""Tracing how one injected fault propagates to the output.

LLFI's selling point (paper §III, "Customizability and Analysis") is that
IR-level injection makes results easy to map back to source. This example
injects the *same* bit flip at every dynamic instance of one source-level
expression and reports, per source line, how often the fault stays local
vs corrupts the output vs crashes — a propagation profile.

Run:  python examples/error_propagation.py
"""

import random
from collections import defaultdict

from repro.backend import compile_module
from repro.fi import LLFIInjector, Outcome, classify
from repro.minic import compile_source

SOURCE = r"""
int histogram[10];

int classify_value(int v) {          // line 4
    int bucket = v / 10;             // line 5
    if (bucket > 9) bucket = 9;      // line 6
    if (bucket < 0) bucket = 0;      // line 7
    return bucket;                   // line 8
}

int main() {
    long seed = 31337;               // line 12
    int i;
    for (i = 0; i < 60; i++) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        int value = (int)((seed >> 40) % 100);
        if (value < 0) value = -value;
        histogram[classify_value(value)]++;
    }
    int total = 0;
    for (i = 0; i < 10; i++) {
        print_int(histogram[i]); print_char(' ');
        total += histogram[i];
    }
    print_char('\n');
    print_str("total="); print_int(total); print_char('\n');
    return 0;
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    compile_module(module)
    llfi = LLFIInjector(module)
    golden = llfi.golden()
    print("golden:", golden.output.strip().splitlines()[-1])

    n = llfi.count_dynamic_candidates("all")
    print(f"{n} dynamic injection candidates\n")

    # Inject at many dynamic instances; bucket outcomes by the source line
    # of the corrupted instruction (the record's target holds the opcode;
    # the line comes from the instruction the injector picked).
    rng = random.Random(1)
    by_line = defaultdict(lambda: defaultdict(int))
    trials = 250
    for _ in range(trials):
        k = rng.randint(1, n)
        result, record, activated = llfi.run_with_fault(
            "all", k, rng, max_instructions=golden.instructions * 20)
        outcome = classify(result, golden.output, activated)
        if outcome is Outcome.NOT_ACTIVATED:
            continue
        # map the record back to a source line via the candidate set
        line = _line_of(llfi, record.target)
        by_line[line][outcome] += 1

    print(f"{'line':>5} {'inj':>4}  {'crash':>6} {'sdc':>6} {'benign':>7}")
    for line in sorted(by_line):
        counts = by_line[line]
        total = sum(counts.values())
        print(f"{line:>5} {total:>4}  "
              f"{100 * counts[Outcome.CRASH] / total:>5.0f}% "
              f"{100 * counts[Outcome.SDC] / total:>5.0f}% "
              f"{100 * counts[Outcome.BENIGN] / total:>6.0f}%")
    print("\nLines whose faults mostly end benign need no protection;")
    print("lines with high SDC rates are where selective duplication pays.")

    # Finally, a full forward-propagation trace of a single fault — the
    # dynamic slice LLFI's analysis mode produces (paper §III).
    from repro.fi import trace_propagation

    print("\nOne traced injection:")
    trace = trace_propagation(llfi, "arithmetic", 10, random.Random(2))
    print(" ", trace.summary())
    for event in trace.events[:8]:
        print(f"   step {event.step}: {event.kind:<12} {event.opcode} "
              f"%{event.name} (line {event.source_line})")
    if len(trace.events) > 8:
        print(f"   ... {len(trace.events) - 8} more events")


def _line_of(llfi: LLFIInjector, target: str) -> int:
    """Recover the source line of the injected instruction from its
    printed name (the FaultRecord keeps 'opcode %name')."""
    name = target.split("%")[-1]
    for func in llfi.module.defined_functions():
        for inst in func.instructions():
            if inst.name == name:
                return inst.source_line
    return 0


if __name__ == "__main__":
    main()
