#!/usr/bin/env python3
"""Comparing the error resilience of two algorithms (a KULFI-style study).

The paper motivates high-level injection with exactly this use case:
understanding *application-specific* resilience so protection can be
selective. Here we compare two implementations of the same computation —
finding the maximum pairwise distance among points:

* ``naive``  — compares squared distances held in ordinary ints;
* ``guarded`` — additionally re-verifies the winning pair at the end
  (a cheap application-level detector, like the paper's related work on
  selective protection).

The guarded version converts many would-be SDCs into detected/benign
outcomes; LLFI quantifies by how much.

Run:  python examples/resilience_study.py
"""

from repro.fi import CampaignConfig, LLFIInjector, Outcome, run_campaign
from repro.minic import compile_source
from repro.backend import compile_module

COMMON = r"""
int xs[20];
int ys[20];

long rng_state = 4242;
int next_rand(int modulus) {
    rng_state = rng_state * 6364136223846793005 + 1442695040888963407;
    long x = rng_state >> 35;
    int v = (int)(x % modulus);
    if (v < 0) v = -v;
    return v;
}

void make_points(void) {
    int i;
    for (i = 0; i < 20; i++) {
        xs[i] = next_rand(1000);
        ys[i] = next_rand(1000);
    }
}

int dist2(int i, int j) {
    int dx = xs[i] - xs[j];
    int dy = ys[i] - ys[j];
    return dx * dx + dy * dy;
}
"""

NAIVE = COMMON + r"""
int main() {
    make_points();
    int best = -1;
    int bi = 0; int bj = 0;
    int i; int j;
    for (i = 0; i < 20; i++)
        for (j = i + 1; j < 20; j++) {
            int d = dist2(i, j);
            if (d > best) { best = d; bi = i; bj = j; }
        }
    print_str("best="); print_int(best);
    print_str(" pair="); print_int(bi); print_char(','); print_int(bj);
    print_char('\n');
    return 0;
}
"""

GUARDED = COMMON + r"""
int main() {
    make_points();
    int best = -1;
    int bi = 0; int bj = 0;
    int i; int j;
    for (i = 0; i < 20; i++)
        for (j = i + 1; j < 20; j++) {
            int d = dist2(i, j);
            if (d > best) { best = d; bi = i; bj = j; }
        }
    // application-level detector: recompute the winner and re-scan
    int check = dist2(bi, bj);
    int consistent = 1;
    if (check != best) consistent = 0;
    for (i = 0; i < 20; i++)
        for (j = i + 1; j < 20; j++)
            if (dist2(i, j) > check) consistent = 0;
    if (!consistent) { print_str("DETECTED\n"); return 1; }
    print_str("best="); print_int(check);
    print_str(" pair="); print_int(bi); print_char(','); print_int(bj);
    print_char('\n');
    return 0;
}
"""


def study(label: str, source: str, trials: int, seed: int):
    """A manual campaign so we can classify 'DETECTED' outputs separately
    from true SDCs (a detected error is, by definition, not silent)."""
    import random

    module = compile_source(source)
    compile_module(module)  # finalize the module like the real pipeline
    llfi = LLFIInjector(module)
    golden = llfi.golden()
    n = llfi.count_dynamic_candidates("all")
    rng = random.Random(seed)
    tallies = {"crash": 0, "sdc": 0, "detected": 0, "benign": 0, "hang": 0}
    done = 0
    while done < trials:
        k = rng.randint(1, n)
        result, _, activated = llfi.run_with_fault(
            "all", k, rng, max_instructions=golden.instructions * 20)
        if result.crashed:
            tallies["crash"] += 1
        elif result.hung:
            tallies["hang"] += 1
        elif "DETECTED" in result.output:
            tallies["detected"] += 1
        elif result.output != golden.output:
            tallies["sdc"] += 1
        elif not activated:
            continue  # non-activated: redraw, like the paper
        else:
            tallies["benign"] += 1
        done += 1
    print(f"{label:8s} " + "  ".join(
        f"{k}={100 * v / trials:.1f}%" for k, v in tallies.items()))
    return tallies


def main() -> None:
    trials = 120
    print("Injecting into 'all' instructions (LLFI), comparing outcomes:\n")
    naive = study("naive", NAIVE, trials, seed=7)
    guarded = study("guarded", GUARDED, trials, seed=7)
    print()
    drop = (naive["sdc"] - guarded["sdc"]) / trials
    print(f"The application-level detector converted "
          f"{100 * drop:.1f} percentage points of silent corruptions into "
          f"detected errors.")
    if guarded["sdc"] < naive["sdc"]:
        print("=> the guarded variant is measurably more resilient, and a "
              "high-level injector was enough to show it.")


if __name__ == "__main__":
    main()
