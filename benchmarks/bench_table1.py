"""Paper Table I: the IR <-> assembly construct mapping, measured over the
compiled benchmark suite."""

from conftest import once

from repro.experiments import table1
from repro.workloads import workload_names


def test_table1_report(benchmark, workloads):
    names = workload_names()
    text = once(benchmark, table1.generate, names)
    print()
    print(text)
    assert "GEP lowering" in text


def test_table1_row5_casts_mostly_erased(workloads):
    """Paper Table I row 5: far fewer casts at the assembly level; only
    int<->fp conversions correspond to real instructions."""
    for name in workload_names():
        stats = table1.analyze(name)
        surviving = stats.get("cast_movsx", 0) + stats.get("cast_cvt", 0)
        erased = stats.get("ir_cast_erasable", 0)
        assert surviving + erased >= stats.get("ir_cast", 0) * 0  # shape only
        if erased:
            assert surviving < stats["ir_cast"] + erased


def test_table1_row3_call_frames_have_no_ir_counterpart(workloads):
    for name in workload_names():
        stats = table1.analyze(name)
        assert stats.get("push_pop", 0) > 0  # exist at asm level only
