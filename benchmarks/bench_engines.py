"""Engine throughput: how fast the two execution engines and the injector
machinery run (the practical cost of the methodology)."""

from conftest import once

from repro.vm.asmsim import AsmSimulator
from repro.vm.irinterp import IRInterpreter


def test_ir_interpreter_throughput(benchmark, workloads):
    built = workloads["libquantumm"]

    def run():
        return IRInterpreter(built.module).run()

    result = benchmark(run)
    assert result.completed


def test_asm_simulator_throughput(benchmark, workloads):
    built = workloads["libquantumm"]

    def run():
        return AsmSimulator(built.program).run()

    result = benchmark(run)
    assert result.completed


def test_llfi_injection_run(benchmark, injectors):
    import random

    llfi = injectors["libquantumm"]["LLFI"]
    n = llfi.count_dynamic_candidates("all")

    def run():
        return llfi.run_with_fault("all", n // 2, random.Random(1))

    result, record, activated = benchmark(run)
    assert record is not None


def test_pinfi_injection_run(benchmark, injectors):
    import random

    pinfi = injectors["libquantumm"]["PINFI"]
    n = pinfi.count_dynamic_candidates("all")

    def run():
        return pinfi.run_with_fault("all", n // 2, random.Random(1))

    result, record, activated = benchmark(run)
    assert record is not None


def test_build_pipeline(benchmark):
    """Compile + backend for one workload, timed for real."""
    from repro.backend import compile_module
    from repro.minic import compile_source
    from repro.workloads import get

    source = get("mcfm").source

    def build():
        module = compile_source(source)
        return compile_module(module)

    program = once(benchmark, build)
    assert "main" in program.functions
