"""Ablations: the paper's §VII accuracy fixes and §IV activation heuristics.

* GEP-as-arithmetic: moves LLFI's arithmetic-category profile toward
  PINFI's (more injection targets; address faults become visible).
* PINFI flag heuristic: without dependent-bit pruning, most flag-register
  injections are never read (activation collapses).
* PINFI XMM heuristic: without low-64 pruning, about half of all XMM
  injections land in bits double ops never read.
"""

from conftest import SEED, TRIALS, once

from repro.fi import (
    CampaignConfig, LLFIInjector, LLFIOptions, PINFIInjector, PINFIOptions,
    run_campaign,
)
from repro.workloads import build


def test_gep_as_arithmetic_ablation(benchmark, workloads):
    # mcfm is the benchmark where LLFI most undercounts arithmetic
    # (pointer chasing: nearly all address math is GEP at the IR level).
    built = workloads["mcfm"]

    def run():
        base = LLFIInjector(built.module)
        fixed = LLFIInjector(built.module,
                             LLFIOptions(gep_as_arithmetic=True))
        return (base.count_dynamic_candidates("arithmetic"),
                fixed.count_dynamic_candidates("arithmetic"),
                PINFIInjector(built.program)
                .count_dynamic_candidates("arithmetic"))

    base_n, fixed_n, pinfi_n = once(benchmark, run)
    print(f"\nmcfm arithmetic candidates: LLFI={base_n} "
          f"LLFI+gep={fixed_n} PINFI={pinfi_n}")
    # Without the fix LLFI sees a small fraction of PINFI's arithmetic
    # population; with it the gap closes (and can overshoot, since some
    # GEPs fold into addressing modes that PINFI cannot inject into —
    # exactly the heuristic problem the paper's §VII discusses).
    assert base_n < 0.5 * pinfi_n
    assert fixed_n > base_n
    assert abs(fixed_n - pinfi_n) < abs(base_n - pinfi_n)


def test_flag_heuristic_ablation(benchmark, workloads):
    built = workloads["bzip2m"]
    config = CampaignConfig(trials=TRIALS, seed=SEED)

    def run():
        with_h = run_campaign(PINFIInjector(built.program), "cmp", config)
        without = run_campaign(
            PINFIInjector(built.program,
                          PINFIOptions(flag_dependent_bits=False)),
            "cmp", config)
        return with_h, without

    with_h, without = once(benchmark, run)
    print(f"\ncmp activation with heuristic:    "
          f"{with_h.activation_rate.percent()}")
    print(f"cmp activation without heuristic: "
          f"{without.activation_rate.percent()}")
    assert with_h.activation_rate.value > 0.95
    assert without.activation_rate.value < with_h.activation_rate.value


def test_xmm_heuristic_ablation(benchmark, workloads):
    built = workloads["oceanm"]
    config = CampaignConfig(trials=TRIALS, seed=SEED)

    def run():
        with_h = run_campaign(PINFIInjector(built.program), "arithmetic",
                              config)
        without = run_campaign(
            PINFIInjector(built.program, PINFIOptions(xmm_low64=False)),
            "arithmetic", config)
        return with_h, without

    with_h, without = once(benchmark, run)
    print(f"\narith activation with XMM pruning:    "
          f"{with_h.activation_rate.percent()}")
    print(f"arith activation without XMM pruning: "
          f"{without.activation_rate.percent()}")
    assert without.activation_rate.value < with_h.activation_rate.value
