"""Batched suffix execution: wall speedup, shared-sweep savings, identity.

    PYTHONPATH=src python benchmarks/bench_batch.py --trials 24

For each (workload, tool, category) cell the same campaign runs twice
with fresh injectors: **scalar** (``batch=0``, today's path) and
**batched** (``batch=N``: each checkpoint bucket's trials fork from one
shared sweep, see ``repro.vm.batch``).  The benchmark verifies the
contracts the optimisation rests on and exits non-zero on any violation:

* **bit identity** — the batched campaign's full serialized result
  (``CampaignResult.to_json(include_records=True)``) must equal the
  scalar one's, per cell;
* **manifest accounting** — prep + per-trial instructions + shared-sweep
  instructions must re-derive the batched injector's
  ``instructions_simulated`` total;
* **sharing** — batched cells must simulate strictly fewer instructions
  than scalar ones (the sweep pays each bucket's prefix once).

Writes ``BENCH_batch.json`` with per-cell wall times, shared/lane
instruction counts, a lane-divergence histogram (lane outcome statuses
and per-group fork counts), and the aggregate wall speedup.  The default
configuration (checkpoints off, so every trial's golden prefix is
otherwise replayed from a cold start) is the headline: the aggregate
``wall_speedup`` is expected to clear 1.3x on the smoke scale.
``--checkpoint-stride -1`` measures the composed mode instead, where
batching's savings are the COW fork replacing per-trial decoded-image
restores.
"""

from __future__ import annotations

import argparse
import json
import time
from collections import Counter

from repro.fi import CampaignConfig, LLFIInjector, PINFIInjector, run_campaign
from repro.obs.manifest import manifest_filename, read_manifest
from repro.workloads import build


def _fresh_injector(tool: str, built):
    if tool == "LLFI":
        return LLFIInjector(built.module)
    return PINFIInjector(built.program)


def run_cell(tool: str, built, workload: str, category: str,
             config: CampaignConfig) -> dict:
    injector = _fresh_injector(tool, built)
    injector.workload_name = workload
    t0 = time.perf_counter()
    result = run_campaign(injector, category, config)
    return {
        "result": result,
        "injector": injector,
        "seconds": time.perf_counter() - t0,
        "instructions_simulated": injector.instructions_simulated,
    }


def bench_cell(workload: str, tool: str, built, category: str, args,
               trace_dir: str) -> dict:
    """Scalar vs batched for one (workload, tool, category)."""
    scalar = run_cell(tool, built, workload, category,
                      CampaignConfig(trials=args.trials, seed=args.seed,
                                     checkpoint_stride=args.checkpoint_stride))
    batched = run_cell(tool, built, workload, category,
                       CampaignConfig(trials=args.trials, seed=args.seed,
                                      checkpoint_stride=args.checkpoint_stride,
                                      batch=args.batch,
                                      trace_dir=trace_dir))
    identical = (scalar["result"].to_json(include_records=True)
                 == batched["result"].to_json(include_records=True))

    manifest = read_manifest(trace_dir + "/" + manifest_filename(
        workload, tool, category, args.trials, args.seed,
        args.checkpoint_stride))
    injector = batched["injector"]
    accounting_ok = (manifest.total_instructions()
                     == batched["instructions_simulated"])

    # Lane-divergence histogram: how the batch's lanes fell off the
    # golden path (their trial outcomes), and how the groups split into
    # forked vs detached lanes.
    outcomes = Counter(t["outcome"] for t in manifest.trials)
    group_forks = Counter(b["forked"] for b in manifest.batches)
    return {
        "seconds_scalar": round(scalar["seconds"], 4),
        "seconds_batched": round(batched["seconds"], 4),
        "instructions_scalar": scalar["instructions_simulated"],
        "instructions_batched": batched["instructions_simulated"],
        "batch_groups": len(manifest.batches),
        "shared_instructions": manifest.total_batch_shared(),
        "lane_instructions": manifest.total_trial_instructions(),
        "lanes_forked": injector.batch_lanes,
        "lanes_detached": injector.batch_detached,
        "cow_pages_shared": sum(b["pages_shared"]
                                for b in manifest.batches),
        "cow_pages_cow": sum(b["pages_cow"] for b in manifest.batches),
        "divergence_histogram": dict(sorted(outcomes.items())),
        "group_fork_histogram": {str(k): v for k, v
                                 in sorted(group_forks.items())},
        "identical": identical,
        "manifest_accounting_ok": accounting_ok,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="*", default=["libquantumm"],
                        help="workloads to measure")
    parser.add_argument("--categories", nargs="*",
                        default=["arithmetic", "all"],
                        help="injection categories")
    parser.add_argument("--trials", type=int, default=24,
                        help="trials per cell (paper scale: 1000)")
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--batch", type=int, default=-1,
                        help="lanes per batch group (negative: default)")
    parser.add_argument("--checkpoint-stride", type=int, default=0,
                        help="0 (default) measures cold-start batching — "
                             "the headline; -1 measures batching composed "
                             "with checkpoint resume")
    parser.add_argument("--output", default="BENCH_batch.json")
    parser.add_argument("--trace-dir", default="results/obs-batch",
                        help="directory for the batched runs' manifests")
    args = parser.parse_args()

    workloads = {}
    violations = []
    scalar_seconds = batched_seconds = 0.0
    scalar_instr = batched_instr = 0

    for workload in args.benchmarks:
        built = build(workload)
        workloads[workload] = {}
        for category in args.categories:
            cells = {}
            for tool in ("LLFI", "PINFI"):
                cell = bench_cell(workload, tool, built, category, args,
                                  args.trace_dir)
                cells[tool] = cell
                name = f"{workload}/{tool}/{category}"
                scalar_seconds += cell["seconds_scalar"]
                batched_seconds += cell["seconds_batched"]
                scalar_instr += cell["instructions_scalar"]
                batched_instr += cell["instructions_batched"]
                if not cell["identical"]:
                    violations.append(f"{name}: batched result is not "
                                      f"bit-identical to scalar")
                if not cell["manifest_accounting_ok"]:
                    violations.append(f"{name}: manifest instruction totals "
                                      f"do not reproduce the injector's")
                if cell["instructions_batched"] >= \
                        cell["instructions_scalar"]:
                    violations.append(f"{name}: batching simulated no fewer "
                                      f"instructions than scalar "
                                      f"({cell['instructions_batched']} vs "
                                      f"{cell['instructions_scalar']})")
            workloads[workload][category] = cells
            print(f"{workload}/{category}: "
                  + " ".join(f"{t}={cells[t]['seconds_scalar']:.2f}s->"
                             f"{cells[t]['seconds_batched']:.2f}s"
                             for t in cells))

    summary = {
        "benchmark": "batch",
        "trials": args.trials,
        "batch": args.batch,
        "checkpoint_stride": args.checkpoint_stride,
        "seed": args.seed,
        "categories": args.categories,
        "workloads": workloads,
        "scalar_seconds": round(scalar_seconds, 3),
        "batched_seconds": round(batched_seconds, 3),
        "wall_speedup": round(scalar_seconds / batched_seconds, 3)
        if batched_seconds else None,
        "scalar_instructions": scalar_instr,
        "batched_instructions": batched_instr,
        "instruction_reduction": round(scalar_instr / batched_instr, 3)
        if batched_instr else None,
        "violations": violations,
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1)
        f.write("\n")
    print(json.dumps({k: v for k, v in summary.items()
                      if k != "workloads"}, indent=1))
    print(f"(written to {args.output})")
    if violations:
        raise SystemExit("batched-execution contract violations:\n  "
                         + "\n  ".join(violations))


if __name__ == "__main__":
    main()
