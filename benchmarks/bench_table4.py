"""Paper Table IV: runtime instruction counts per category, LLFI vs PINFI.

Shape assertions (paper §VI-B):
* 'cast' counts are negligible for both tools;
* 'cmp' counts are similar between tools;
* LLFI's arithmetic *share* is below PINFI's (address computation is GEP
  at the IR level, add/mul/lea at the assembly level);
* on the data-movement-bound benchmarks the paper calls out (libquantum),
  LLFI counts more loads and more instructions overall.
"""

from conftest import once

from repro.experiments import table4
from repro.workloads import workload_names


def test_table4_report(benchmark, workloads):
    names = workload_names()
    data = once(benchmark, table4.collect, names)
    print()
    print(table4.generate(names))

    for name in names:
        llfi, pinfi = data[name]["LLFI"], data[name]["PINFI"]
        # cast counts negligible (<2% of all) for both tools
        assert llfi["cast"] <= 0.02 * llfi["all"], name
        assert pinfi["cast"] <= 0.02 * pinfi["all"], name
        # cmp counts similar between tools (within 15%)
        assert abs(llfi["cmp"] - pinfi["cmp"]) <= 0.15 * max(llfi["cmp"], 1), \
            name

    # LLFI arithmetic share < PINFI arithmetic share for most benchmarks
    below = sum(
        data[n]["LLFI"]["arithmetic"] / data[n]["LLFI"]["all"]
        < data[n]["PINFI"]["arithmetic"] / data[n]["PINFI"]["all"]
        for n in names)
    assert below >= 4, f"arithmetic share shape held for only {below}/6"

    # libquantum's signature (paper §VI-C): far more IR-level loads
    lq = data["libquantumm"]
    assert lq["LLFI"]["load"] > 1.5 * lq["PINFI"]["load"]
    assert lq["LLFI"]["all"] > lq["PINFI"]["all"]
