"""Extension study (beyond the paper): sensitivity of the outcome
distribution to the fault model.

The paper injects single bit flips. Multi-bit upsets and stuck-at faults
are the obvious next questions; this bench measures how the crash/SDC
split moves as the fault model widens, using LLFI on one benchmark.
"""

from conftest import SEED, TRIALS, once

from repro.experiments.report import format_table
from repro.fi import (
    CampaignConfig, LLFIInjector, MultiBitFlip, SingleBitFlip, StuckAtOne,
    StuckAtZero, run_campaign,
)

MODELS = [
    ("1-bit flip", SingleBitFlip()),
    ("2-bit flip", MultiBitFlip(2)),
    ("4-bit flip", MultiBitFlip(4)),
    ("stuck-at-0", StuckAtZero()),
    ("stuck-at-1", StuckAtOne()),
]


def test_fault_model_sensitivity(benchmark, workloads):
    built = workloads["libquantumm"]
    llfi = LLFIInjector(built.module)

    def run():
        results = {}
        for label, model in MODELS:
            config = CampaignConfig(trials=TRIALS, seed=SEED, model=model)
            results[label] = run_campaign(llfi, "all", config)
        return results

    results = once(benchmark, run)

    rows = []
    for label, _ in MODELS:
        r = results[label]
        rows.append([label,
                     f"{100 * r.crash.value:.0f}%",
                     f"{100 * r.sdc.value:.0f}%",
                     f"{100 * r.benign.value:.0f}%",
                     r.activation_rate.percent()])
    print()
    print(format_table(
        ["fault model", "crash", "SDC", "benign", "activation"],
        rows, title=f"Fault-model sensitivity (libquantumm, LLFI 'all', "
                    f"{TRIALS} trials)"))

    one_bit = results["1-bit flip"]
    four_bit = results["4-bit flip"]
    # Wider faults can only make things worse (or equal, within noise).
    assert four_bit.benign.value <= one_bit.benign.value + 0.15
    # Stuck-at faults sometimes write the value that was already there, so
    # their activation cannot exceed the flips'.
    assert results["stuck-at-0"].activation_rate.value <= 1.0
