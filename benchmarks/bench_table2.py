"""Paper Table II: benchmark characteristics (and compile-time cost)."""

from conftest import once

from repro.experiments import table2
from repro.workloads import get, workload_names
from repro.minic import compile_source


def test_table2_report(benchmark):
    text = once(benchmark, table2.generate)
    print()
    print(text)
    for name in workload_names():
        assert name in text


def test_compile_all_benchmarks(benchmark):
    """Time the full front-end + optimizer over the whole suite."""

    def compile_all():
        return [compile_source(get(name).source, optimize=True)
                for name in workload_names()]

    modules = once(benchmark, compile_all)
    assert len(modules) == 6
