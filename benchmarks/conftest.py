"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper.
Campaign sizes default to REPRO_BENCH_TRIALS (25) so the whole suite runs
in minutes; pass a larger value (the paper used 1000) for tighter CIs:

    REPRO_BENCH_TRIALS=200 pytest benchmarks/ --benchmark-only -s

Campaign results are computed once per session and shared across bench
modules (figure 4 and table 5 use the same grid, like the paper).
"""

import os
from typing import Dict

import pytest

from repro.fi import CampaignConfig, CampaignResult, run_campaign
from repro.workloads import build, workload_names

TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "25"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "20140623"))


@pytest.fixture(scope="session")
def workloads():
    return {name: build(name) for name in workload_names()}


@pytest.fixture(scope="session")
def injectors(workloads):
    from repro.fi import LLFIInjector, PINFIInjector

    return {name: {"LLFI": LLFIInjector(b.module),
                   "PINFI": PINFIInjector(b.program)}
            for name, b in workloads.items()}


class CampaignStore:
    """Lazily computed, session-cached campaign grid."""

    def __init__(self, injectors):
        self.injectors = injectors
        self._cache: Dict[tuple, CampaignResult] = {}

    def get(self, workload: str, tool: str, category: str) -> CampaignResult:
        key = (workload, tool, category)
        if key not in self._cache:
            config = CampaignConfig(trials=TRIALS, seed=SEED)
            self._cache[key] = run_campaign(
                self.injectors[workload][tool], category, config)
        return self._cache[key]


@pytest.fixture(scope="session")
def campaigns(injectors):
    return CampaignStore(injectors)


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive reproduction exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
