"""Paper Table V: crash percentage per instruction category.

Shape assertions (paper §VI-D): crash rates are similar for 'cmp' (both
near zero — flag flips rarely crash), but show considerable differences in
other categories, with a maximum gap of tens of percentage points — the
paper's finding that high-level injection is NOT accurate for crashes.
"""

from conftest import TRIALS, once

from repro.experiments.report import format_table
from repro.fi.categories import CATEGORIES
from repro.workloads import workload_names


def test_table5_report(benchmark, campaigns):
    names = workload_names()

    def run_grid():
        return {name: {cat: {tool: campaigns.get(name, tool, cat)
                             for tool in ("LLFI", "PINFI")}
                       for cat in CATEGORIES}
                for name in names}

    data = once(benchmark, run_grid)

    headers = ["Program"]
    for cat in CATEGORIES:
        headers += [f"{cat[:5]} L", f"{cat[:5]} P"]
    rows = []
    max_gap = {cat: 0.0 for cat in CATEGORIES}
    for name in names:
        row = [name]
        for cat in CATEGORIES:
            lv = data[name][cat]["LLFI"].crash.value
            pv = data[name][cat]["PINFI"].crash.value
            row += [f"{100 * lv:.0f}%", f"{100 * pv:.0f}%"]
            max_gap[cat] = max(max_gap[cat], abs(lv - pv))
        rows.append(row)
    print()
    print(format_table(headers, rows,
                       title=f"Table V: crash%% (trials={TRIALS}/cell)"))
    print("max |LLFI-PINFI| gap per category:",
          {c: f"{100 * g:.0f}pt" for c, g in max_gap.items()})

    # cmp crash rates are similar between tools on every benchmark (the
    # paper's §VI-D finding; absolute levels depend on the workload)
    for name in names:
        llfi_cmp = data[name]["cmp"]["LLFI"].crash
        pinfi_cmp = data[name]["cmp"]["PINFI"].crash
        assert llfi_cmp.overlaps(pinfi_cmp), \
            (name, llfi_cmp.percent(), pinfi_cmp.percent())

    # and at least one non-cmp category shows a substantial gap somewhere
    assert max(max_gap[c] for c in ("arithmetic", "cast", "load", "all")) \
        > 0.10
