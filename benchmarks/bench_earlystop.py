"""Adaptive early stopping: trials saved, wall-clock, and bucket hit rate.

    PYTHONPATH=src python benchmarks/bench_earlystop.py --trials 48

For each (workload, tool, category) cell the same campaign runs twice
with fresh injectors: **full** (``ci_margin=0``, the entire trial budget)
and **adaptive** (Wilson-CI early stopping at ``--ci-margin``, rounds of
``--round-size``, checkpoints on).  The benchmark then verifies the
contracts the optimisation rests on and exits non-zero on any violation:

* **prefix identity** — a third fresh run with ``trials = n_stop`` must
  be bit-identical to the adaptive result (same counts, same per-trial
  fault records);
* **verdict identity** — the paper's CI-overlap comparison between LLFI
  and PINFI (per outcome, per cell) must agree between the full and the
  adaptive grid;
* **stop validity** — each adaptive manifest's claimed stop must satisfy
  its own margin target (``repro.obs.report.validate_stop_claims``);
* **manifest accounting** — prep + per-trial instructions must re-derive
  the injector's ``instructions_simulated`` total;
* **bucket sharing** — checkpoint-bucketed scheduling must decode each
  snapshot at most once per campaign: strictly fewer decodes than
  executed trials.

Writes ``BENCH_earlystop.json`` with per-cell n_stop, the aggregate
trials-saved factor, wall-clock speedup and the decode-cache hit rate.
At paper scale (``--trials 1000 --ci-margin 0.03``) the aggregate saving
across the category grid is the headline number; the small default scale
is a CI smoke configuration of the same gates.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.fi import CampaignConfig, LLFIInjector, PINFIInjector, run_campaign
from repro.fi.categories import CATEGORIES
from repro.fi.outcome import Outcome
from repro.obs.manifest import manifest_filename, read_manifest
from repro.obs.report import validate_stop_claims
from repro.workloads import build

#: Outcomes entering the CI-overlap verdict grid (the paper's figures).
VERDICT_OUTCOMES = [Outcome.CRASH, Outcome.SDC, Outcome.HANG, Outcome.BENIGN]


def _fresh_injector(tool: str, built):
    if tool == "LLFI":
        return LLFIInjector(built.module)
    return PINFIInjector(built.program)


def _trial_key(t):
    return (t.k, t.outcome.value, t.record.dynamic_index,
            tuple(t.record.bit_positions), t.record.target, t.record.width)


def _fingerprint(result) -> dict:
    return {
        "counts": {o.value: n for o, n in result.counts.items()},
        "not_activated": result.not_activated,
        "records": [_trial_key(t) for t in result.records],
    }


def run_cell(tool: str, built, workload: str, category: str,
             config: CampaignConfig) -> dict:
    injector = _fresh_injector(tool, built)
    injector.workload_name = workload
    t0 = time.perf_counter()
    result = run_campaign(injector, category, config)
    seconds = time.perf_counter() - t0
    store = injector.ensure_checkpoints()
    return {
        "result": result,
        "injector": injector,
        "store": store,
        "seconds": seconds,
        "trials_executed": result.trials,
        "instructions_simulated": injector.instructions_simulated,
    }


def bench_cell(workload: str, tool: str, built, category: str,
               args, trace_dir: str) -> dict:
    """Full vs adaptive vs fresh-prefix for one (workload, tool, category)."""
    full = run_cell(tool, built, workload, category,
                    CampaignConfig(trials=args.trials, seed=args.seed,
                                   checkpoint_stride=-1))
    adaptive = run_cell(tool, built, workload, category,
                        CampaignConfig(trials=args.trials, seed=args.seed,
                                       checkpoint_stride=-1,
                                       ci_margin=args.ci_margin,
                                       round_size=args.round_size,
                                       trace_dir=trace_dir))
    n_stop = adaptive["trials_executed"]
    prefix = run_cell(tool, built, workload, category,
                      CampaignConfig(trials=n_stop, seed=args.seed,
                                     checkpoint_stride=-1))
    prefix_identical = (_fingerprint(adaptive["result"])
                        == _fingerprint(prefix["result"]))

    manifest_path = os.path.join(trace_dir, manifest_filename(
        workload, tool, category, args.trials, args.seed, -1,
        args.ci_margin))
    manifest = read_manifest(manifest_path)
    stop_problems = validate_stop_claims(manifest)
    accounting_ok = (manifest.total_instructions()
                     == adaptive["instructions_simulated"])

    store = adaptive["store"]
    cell = {
        "trials_full": full["trials_executed"],
        "n_stop": n_stop,
        "trials_saved": args.trials - n_stop,
        "stopped": n_stop < args.trials,
        "rounds": manifest.summary.get("rounds"),
        "margin_at_stop": manifest.summary.get("margin_at_stop"),
        "seconds_full": round(full["seconds"], 4),
        "seconds_adaptive": round(adaptive["seconds"], 4),
        "instructions_full": full["instructions_simulated"],
        "instructions_adaptive": adaptive["instructions_simulated"],
        "snapshot_decodes": store.decode_count if store else 0,
        "decoded_restores": store.decoded_restores if store else 0,
        "prefix_identical": prefix_identical,
        "stop_valid": not stop_problems,
        "stop_problems": stop_problems,
        "manifest_accounting_ok": accounting_ok,
        # CI-overlap inputs for the cross-tool verdict grid.
        "_proportions": {o.value: adaptive["result"].proportion(o)
                         for o in VERDICT_OUTCOMES},
        "_proportions_full": {o.value: full["result"].proportion(o)
                              for o in VERDICT_OUTCOMES},
    }
    return cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="*",
                        default=["libquantumm", "mcfm"],
                        help="workloads to measure (default: two)")
    parser.add_argument("--categories", nargs="*", default=list(CATEGORIES),
                        help="injection categories (default: the full grid)")
    parser.add_argument("--trials", type=int, default=48,
                        help="full trial budget per cell (paper scale: 1000)")
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--ci-margin", type=float, default=0.3,
                        help="early-stopping margin target (paper-scale "
                             "runs use 0.03)")
    parser.add_argument("--round-size", type=int, default=8,
                        help="trials per scheduling round")
    parser.add_argument("--output", default="BENCH_earlystop.json")
    parser.add_argument("--trace-dir", default="results/obs-earlystop",
                        help="directory for the adaptive runs' manifests")
    args = parser.parse_args()

    workloads = {}
    violations = []
    full_trials = adaptive_trials = 0
    full_seconds = adaptive_seconds = 0.0
    total_decodes = total_restores = 0
    verdict_cells = verdict_matches = 0

    for workload in args.benchmarks:
        built = build(workload)
        workloads[workload] = {}
        for category in args.categories:
            cells = {}
            for tool in ("LLFI", "PINFI"):
                cell = bench_cell(workload, tool, built, category, args,
                                  args.trace_dir)
                cells[tool] = cell
                name = f"{workload}/{tool}/{category}"
                full_trials += cell["trials_full"]
                adaptive_trials += cell["n_stop"]
                full_seconds += cell["seconds_full"]
                adaptive_seconds += cell["seconds_adaptive"]
                total_decodes += cell["snapshot_decodes"]
                total_restores += cell["decoded_restores"]
                if not cell["prefix_identical"]:
                    violations.append(f"{name}: adaptive result is not the "
                                      f"trials={cell['n_stop']} prefix run")
                if not cell["stop_valid"]:
                    violations.append(
                        f"{name}: {'; '.join(cell['stop_problems'])}")
                if not cell["manifest_accounting_ok"]:
                    violations.append(f"{name}: manifest instruction totals "
                                      f"do not reproduce the injector's")
                if cell["snapshot_decodes"] >= cell["n_stop"] \
                        and cell["decoded_restores"] > 0:
                    violations.append(f"{name}: {cell['snapshot_decodes']} "
                                      f"snapshot decodes for "
                                      f"{cell['n_stop']} trials — bucket "
                                      f"sharing is not happening")
            # The paper's verdict: do the tools' CIs overlap, per outcome?
            for outcome in VERDICT_OUTCOMES:
                key = outcome.value
                full_verdict = cells["LLFI"]["_proportions_full"][key] \
                    .overlaps(cells["PINFI"]["_proportions_full"][key])
                adaptive_verdict = cells["LLFI"]["_proportions"][key] \
                    .overlaps(cells["PINFI"]["_proportions"][key])
                verdict_cells += 1
                if full_verdict == adaptive_verdict:
                    verdict_matches += 1
                else:
                    violations.append(
                        f"{workload}/{category}/{key}: CI-overlap verdict "
                        f"flipped (full={full_verdict}, "
                        f"adaptive={adaptive_verdict})")
            for tool in cells:
                cells[tool].pop("_proportions")
                cells[tool].pop("_proportions_full")
            workloads[workload][category] = cells
            saved = {t: cells[t]["trials_saved"] for t in cells}
            print(f"{workload}/{category}: n_stop="
                  f"{ {t: cells[t]['n_stop'] for t in cells} } "
                  f"saved={saved}")

    summary = {
        "benchmark": "earlystop",
        "trials": args.trials,
        "ci_margin": args.ci_margin,
        "round_size": args.round_size,
        "seed": args.seed,
        "categories": args.categories,
        "workloads": workloads,
        "full_trials": full_trials,
        "adaptive_trials": adaptive_trials,
        "trials_saved_factor": round(full_trials / adaptive_trials, 3)
        if adaptive_trials else None,
        "full_seconds": round(full_seconds, 3),
        "adaptive_seconds": round(adaptive_seconds, 3),
        "wall_speedup": round(full_seconds / adaptive_seconds, 3)
        if adaptive_seconds else None,
        "snapshot_decodes": total_decodes,
        "decoded_restores": total_restores,
        "bucket_hit_rate": round(1 - total_decodes / total_restores, 4)
        if total_restores else None,
        "verdict_cells": verdict_cells,
        "verdict_matches": verdict_matches,
        "verdicts_identical": verdict_matches == verdict_cells,
        "violations": violations,
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1)
        f.write("\n")
    print(json.dumps({k: v for k, v in summary.items()
                      if k != "workloads"}, indent=1))
    print(f"(written to {args.output})")
    if violations:
        raise SystemExit("early-stopping contract violations:\n  "
                         + "\n  ".join(violations))


if __name__ == "__main__":
    main()
