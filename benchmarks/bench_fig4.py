"""Paper Figure 4: SDC percentage per instruction category with 95% CIs.

Shape assertion — the paper's central claim (§VI-C): the LLFI and PINFI
SDC confidence intervals overlap for most (program, category) cells, i.e.
high-level injection is accurate for SDC-causing errors.
"""

from conftest import TRIALS, once

from repro.experiments.report import format_table
from repro.fi.categories import CATEGORIES
from repro.workloads import workload_names


def test_fig4_report(benchmark, campaigns):
    names = workload_names()

    def run_grid():
        grid = {}
        for name in names:
            grid[name] = {}
            for category in CATEGORIES:
                grid[name][category] = {
                    tool: campaigns.get(name, tool, category)
                    for tool in ("LLFI", "PINFI")}
        return grid

    data = once(benchmark, run_grid)

    agree = total = 0
    print()
    for category in CATEGORIES:
        rows = []
        for name in names:
            llfi = data[name][category]["LLFI"]
            pinfi = data[name][category]["PINFI"]
            overlap = llfi.sdc.overlaps(pinfi.sdc)
            agree += overlap
            total += 1
            rows.append([name, llfi.sdc.percent(), pinfi.sdc.percent(),
                         "yes" if overlap else "NO"])
        print(format_table(
            ["Program", "LLFI SDC", "PINFI SDC", "CI overlap"],
            rows, title=f"Figure 4({category}), trials={TRIALS}/cell"))
        print()
    print(f"CI overlap: {agree}/{total} cells")

    # Paper: "the difference between LLFI and PINFI is within the
    # measurement error threshold for most programs".
    assert agree >= 0.7 * total, f"only {agree}/{total} cells overlap"
