"""Checkpoint-and-resume speedup: simulated instructions and wall-clock.

    PYTHONPATH=src python benchmarks/bench_checkpoint.py --trials 32

For each (workload, tool) pair the same campaign is run cold
(``checkpoint_stride=0``) and with golden-run checkpoints at stride N/5
and N/20 (N = golden instruction count; N/20 is what the experiments'
default ``--checkpoint-stride -1`` resolves to).  Each configuration uses
a *fresh* injector so nothing is shared between configurations except the
compiled program.  The benchmark verifies the bit-identity contract — the
outcome distribution and every per-trial fault record must be unchanged —
and exits non-zero on any mismatch, so CI can use it as a regression gate.

Writes a machine-readable summary (default ``BENCH_checkpoint.json``) with
per-configuration simulated-instruction counts, wall-clock, and the
instruction reduction vs cold, so the perf trajectory of the trial hot
path can be tracked across PRs.

With ``--trace-dir`` every configuration also writes its JSONL run
manifest (``repro.obs``) and the benchmark cross-checks the manifest
accounting identity: setup ``prep_instructions`` plus the per-trial
``instructions`` sum must equal the fresh injector's
``instructions_simulated`` — i.e. the manifest re-derives exactly the
number this benchmark reports.  Any mismatch exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.fi import CampaignConfig, LLFIInjector, PINFIInjector, run_campaign
from repro.obs.manifest import manifest_filename, read_manifest
from repro.workloads import build


def _fresh_injector(tool: str, built):
    if tool == "LLFI":
        return LLFIInjector(built.module)
    return PINFIInjector(built.program)


def _trial_key(t):
    return (t.k, t.outcome.value, t.record.dynamic_index,
            tuple(t.record.bit_positions), t.record.target, t.record.width)


def _fingerprint(result) -> dict:
    return {
        "counts": {o.value: n for o, n in result.counts.items()},
        "not_activated": result.not_activated,
        "records": [_trial_key(t) for t in result.records],
    }


def measure(tool: str, built, category: str, trials: int, seed: int,
            stride: int, label: str, workload: str,
            trace_dir: str = None) -> dict:
    injector = _fresh_injector(tool, built)
    injector.workload_name = workload
    config = CampaignConfig(trials=trials, seed=seed,
                            checkpoint_stride=stride, trace_dir=trace_dir)
    t0 = time.perf_counter()
    result = run_campaign(injector, category, config)
    seconds = time.perf_counter() - t0
    store = injector.ensure_checkpoints()
    cell = {
        "label": label,
        "stride": stride,
        "seconds": round(seconds, 4),
        "instructions_simulated": injector.instructions_simulated,
        "executions": injector.executions,
        "checkpoints": len(store) if store is not None else 0,
        "fingerprint": _fingerprint(result),
    }
    if trace_dir:
        import os

        path = os.path.join(trace_dir, manifest_filename(
            workload, tool, category, trials, seed, stride))
        manifest = read_manifest(path)
        # The manifest must re-derive this benchmark's headline number:
        # prep + per-trial simulated instructions == the injector total.
        cell["manifest"] = path
        cell["manifest_instructions"] = manifest.total_instructions()
        cell["manifest_matches"] = (
            manifest.total_instructions() == injector.instructions_simulated)
    return cell


def bench_pair(workload: str, tool: str, category: str, trials: int,
               seed: int, trace_dir: str = None) -> dict:
    built = build(workload)
    golden = _fresh_injector(tool, built).golden_cached()
    n = golden.instructions
    configs = [
        measure(tool, built, category, trials, seed, 0, "cold",
                workload, trace_dir),
        measure(tool, built, category, trials, seed, max(1, n // 5), "N/5",
                workload, trace_dir),
        measure(tool, built, category, trials, seed, max(1, n // 20), "N/20",
                workload, trace_dir),
    ]
    cold = configs[0]
    identical = all(c["fingerprint"] == cold["fingerprint"]
                    for c in configs[1:])
    for c in configs:
        c["instruction_reduction_vs_cold"] = round(
            cold["instructions_simulated"] / c["instructions_simulated"], 3)
        c["speedup_vs_cold"] = round(cold["seconds"] / c["seconds"], 3)
        del c["fingerprint"]  # bulky; the verdict is what matters
    return {
        "golden_instructions": n,
        "configs": configs,
        "bit_identical": identical,
        "manifests_match": all(c.get("manifest_matches", True)
                               for c in configs),
        "reduction_at_default": configs[2]["instruction_reduction_vs_cold"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="*",
                        default=["libquantumm", "mcfm"],
                        help="workloads to measure (default: two)")
    parser.add_argument("--tools", nargs="*", default=["LLFI", "PINFI"])
    parser.add_argument("--category", default="all")
    parser.add_argument("--trials", type=int, default=32)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--output", default="BENCH_checkpoint.json")
    parser.add_argument("--trace-dir", default=None,
                        help="write per-configuration JSONL run manifests "
                             "here and cross-check their instruction totals")
    args = parser.parse_args()

    workloads = {}
    all_identical = True
    manifests_match = True
    reductions = []
    for workload in args.benchmarks:
        workloads[workload] = {}
        for tool in args.tools:
            cell = bench_pair(workload, tool, args.category, args.trials,
                              args.seed, args.trace_dir)
            workloads[workload][tool] = cell
            all_identical = all_identical and cell["bit_identical"]
            manifests_match = manifests_match and cell["manifests_match"]
            reductions.append(cell["reduction_at_default"])
            print(f"{workload}/{tool}: golden={cell['golden_instructions']} "
                  f"reduction@N/20={cell['reduction_at_default']}x "
                  f"identical={cell['bit_identical']}")

    summary = {
        "benchmark": "checkpoint_resume",
        "category": args.category,
        "trials": args.trials,
        "seed": args.seed,
        "workloads": workloads,
        "bit_identical": all_identical,
        "manifests_match": manifests_match,
        "min_reduction_at_default": min(reductions),
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1)
        f.write("\n")
    print(json.dumps(summary, indent=1))
    print(f"(written to {args.output})")
    if not all_identical:
        raise SystemExit("bit-identity violation: checkpointed campaign "
                         "results differ from cold-start results")
    if not manifests_match:
        raise SystemExit("manifest accounting violation: per-trial "
                         "instruction sums do not reproduce the injector "
                         "totals")


if __name__ == "__main__":
    main()
