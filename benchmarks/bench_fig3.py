"""Paper Figure 3: aggregate crash/SDC/benign breakdown (category 'all').

Shape assertions (paper §VI-A): average crash rate in the tens of percent,
average SDC rate well below crash, hangs negligible, and a non-trivial
benign fraction — for both tools.
"""

from conftest import TRIALS, once

from repro.experiments.report import format_table, stacked_bar
from repro.workloads import workload_names


def test_fig3_report(benchmark, campaigns):
    names = workload_names()

    def run_grid():
        return {name: {tool: campaigns.get(name, tool, "all")
                       for tool in ("LLFI", "PINFI")}
                for name in names}

    data = once(benchmark, run_grid)

    rows = []
    avg = {tool: [0.0, 0.0, 0.0] for tool in ("LLFI", "PINFI")}
    for name in names:
        for tool in ("LLFI", "PINFI"):
            r = data[name][tool]
            crash, sdc, benign = r.crash.value, r.sdc.value, r.benign.value
            avg[tool][0] += crash / len(names)
            avg[tool][1] += sdc / len(names)
            avg[tool][2] += benign / len(names)
            rows.append([name if tool == "LLFI" else "", tool,
                         f"{100 * crash:.0f}%", f"{100 * sdc:.0f}%",
                         f"{100 * benign:.0f}%",
                         stacked_bar([crash, sdc, benign], "#+.", 36)])
    for tool in ("LLFI", "PINFI"):
        rows.append(["average" if tool == "LLFI" else "", tool,
                     f"{100 * avg[tool][0]:.0f}%",
                     f"{100 * avg[tool][1]:.0f}%",
                     f"{100 * avg[tool][2]:.0f}%",
                     stacked_bar(avg[tool], "#+.", 36)])
    print()
    print(format_table(
        ["Program", "Tool", "Crash", "SDC", "Benign", "# crash + sdc . benign"],
        rows, title=f"Figure 3 (trials={TRIALS}/cell)"))

    for tool in ("LLFI", "PINFI"):
        crash, sdc, benign = avg[tool]
        assert 0.10 < crash < 0.75, (tool, crash)
        assert sdc < crash, (tool, sdc, crash)
        assert benign > 0.15, (tool, benign)
        # hangs negligible (paper: "hang results are negligible")
        hangs = sum(data[n][tool].hang.value for n in names) / len(names)
        assert hangs < 0.10, (tool, hangs)
