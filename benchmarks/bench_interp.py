"""Block-compiled execution: wall speedup, bit identity, accounting.

    PYTHONPATH=src python benchmarks/bench_interp.py --trials 24

For each (workload, tool, category) cell the same campaign runs twice
with fresh injectors: **interpreted** (``no_compile=True``, the scalar
per-instruction loop) and **compiled** (the default: every basic block
pre-resolved into a threaded sequence of per-instruction closures, with
compare+branch and load+binop pairs fused into superinstructions, see
``repro.vm.blockcache``).  The benchmark verifies the contracts the
optimisation rests on and exits non-zero on any violation:

* **bit identity** — the compiled campaign's full serialized result
  (``CampaignResult.to_json(include_records=True)``) must equal the
  interpreted one's, per cell;
* **manifest accounting** — prep + per-trial instructions + shared-sweep
  instructions must re-derive the compiled injector's
  ``instructions_simulated`` total (the three-term identity holds under
  compilation);
* **compilation happened** — the compiled cell's manifest must report
  compiled blocks actually dispatched (the comparison would be vacuous
  otherwise).

Writes ``BENCH_interp.json`` with per-cell wall times, compile
statistics (blocks compiled, superinstructions fused, fallback rate,
compile wall time) and the aggregate ``wall_speedup`` — expected to
clear 1.5x on the libquantumm smoke config (``--min-speedup`` turns the
expectation into a hard gate).
"""

from __future__ import annotations

import argparse
import json
import time

from repro.fi import CampaignConfig, LLFIInjector, PINFIInjector, run_campaign
from repro.obs.manifest import manifest_filename, read_manifest
from repro.workloads import build


def _fresh_injector(tool: str, built):
    if tool == "LLFI":
        return LLFIInjector(built.module)
    return PINFIInjector(built.program)


def run_cell(tool: str, built, workload: str, category: str,
             config: CampaignConfig) -> dict:
    injector = _fresh_injector(tool, built)
    injector.workload_name = workload
    t0 = time.perf_counter()
    result = run_campaign(injector, category, config)
    return {
        "result": result,
        "injector": injector,
        "seconds": time.perf_counter() - t0,
        "instructions_simulated": injector.instructions_simulated,
    }


def bench_cell(workload: str, tool: str, built, category: str, args,
               trace_dir: str) -> dict:
    """Interpreted vs compiled for one (workload, tool, category)."""
    interpreted = run_cell(
        tool, built, workload, category,
        CampaignConfig(trials=args.trials, seed=args.seed,
                       checkpoint_stride=args.checkpoint_stride,
                       no_compile=True))
    compiled = run_cell(
        tool, built, workload, category,
        CampaignConfig(trials=args.trials, seed=args.seed,
                       checkpoint_stride=args.checkpoint_stride,
                       trace_dir=trace_dir))
    identical = (interpreted["result"].to_json(include_records=True)
                 == compiled["result"].to_json(include_records=True))

    manifest = read_manifest(trace_dir + "/" + manifest_filename(
        workload, tool, category, args.trials, args.seed,
        args.checkpoint_stride))
    accounting_ok = (manifest.total_instructions()
                     == compiled["instructions_simulated"])

    comp = manifest.summary.get("compile") or {}
    dispatched = comp.get("compiled_blocks", 0) + comp.get("fallback_blocks",
                                                           0)
    return {
        "seconds_interpreted": round(interpreted["seconds"], 4),
        "seconds_compiled": round(compiled["seconds"], 4),
        "instructions": compiled["instructions_simulated"],
        "blocks_compiled": comp.get("blocks_compiled", 0),
        "superinstructions": comp.get("superinstructions", 0),
        "compile_wall_s": comp.get("compile_wall_s", 0.0),
        "compiled_blocks": comp.get("compiled_blocks", 0),
        "fallback_blocks": comp.get("fallback_blocks", 0),
        "fallback_rate": (round(comp.get("fallback_blocks", 0) / dispatched,
                                4) if dispatched else None),
        "identical": identical,
        "manifest_accounting_ok": accounting_ok,
        "compiled_dispatch_ok": comp.get("enabled", False)
        and comp.get("compiled_blocks", 0) > 0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="*",
                        default=["libquantumm", "mcfm"],
                        help="workloads to measure")
    parser.add_argument("--categories", nargs="*",
                        default=["arithmetic", "all"],
                        help="injection categories")
    parser.add_argument("--trials", type=int, default=24,
                        help="trials per cell (paper scale: 1000)")
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--checkpoint-stride", type=int, default=0,
                        help="0 (default) measures cold-start campaigns — "
                             "the headline dispatch-cost comparison; -1 "
                             "measures compilation composed with "
                             "checkpoint resume")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the aggregate wall speedup "
                             "clears this (0 disables the gate)")
    parser.add_argument("--output", default="BENCH_interp.json")
    parser.add_argument("--trace-dir", default="results/obs-interp",
                        help="directory for the compiled runs' manifests")
    args = parser.parse_args()

    workloads = {}
    violations = []
    interpreted_seconds = compiled_seconds = 0.0

    for workload in args.benchmarks:
        built = build(workload)
        workloads[workload] = {}
        for category in args.categories:
            cells = {}
            for tool in ("LLFI", "PINFI"):
                cell = bench_cell(workload, tool, built, category, args,
                                  args.trace_dir)
                cells[tool] = cell
                name = f"{workload}/{tool}/{category}"
                interpreted_seconds += cell["seconds_interpreted"]
                compiled_seconds += cell["seconds_compiled"]
                if not cell["identical"]:
                    violations.append(f"{name}: compiled result is not "
                                      f"bit-identical to interpreted")
                if not cell["manifest_accounting_ok"]:
                    violations.append(f"{name}: manifest instruction totals "
                                      f"do not reproduce the injector's")
                if not cell["compiled_dispatch_ok"]:
                    violations.append(f"{name}: compiled run dispatched no "
                                      f"compiled blocks")
            workloads[workload][category] = cells
            print(f"{workload}/{category}: "
                  + " ".join(f"{t}={cells[t]['seconds_interpreted']:.2f}s->"
                             f"{cells[t]['seconds_compiled']:.2f}s"
                             for t in cells))

    wall_speedup = (round(interpreted_seconds / compiled_seconds, 3)
                    if compiled_seconds else None)
    if args.min_speedup and wall_speedup is not None \
            and wall_speedup < args.min_speedup:
        violations.append(f"aggregate wall speedup {wall_speedup} below "
                          f"the required {args.min_speedup}")
    summary = {
        "benchmark": "interp",
        "trials": args.trials,
        "checkpoint_stride": args.checkpoint_stride,
        "seed": args.seed,
        "categories": args.categories,
        "workloads": workloads,
        "interpreted_seconds": round(interpreted_seconds, 3),
        "compiled_seconds": round(compiled_seconds, 3),
        "wall_speedup": wall_speedup,
        "violations": violations,
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1)
        f.write("\n")
    print(json.dumps({k: v for k, v in summary.items()
                      if k != "workloads"}, indent=1))
    print(f"(written to {args.output})")
    if violations:
        raise SystemExit("compiled-execution contract violations:\n  "
                         + "\n  ".join(violations))


if __name__ == "__main__":
    main()
