"""Campaign-engine throughput: trials/sec at jobs=1 vs jobs=N.

    PYTHONPATH=src python benchmarks/bench_campaign.py --trials 64 --jobs 4

Measures one (workload, tool, category) campaign through the parallel
engine at both job counts, checks the results are bit-identical (the
engine's determinism contract), and writes a machine-readable summary
(default ``BENCH_campaign.json``) so the perf trajectory of the campaign
hot path can be tracked across PRs.

Injector build, golden run and profiling pass are warmed outside the timed
region — the benchmark isolates trial throughput, which is what dominates
paper-scale (1000-trial) campaigns.  Pool startup is left *inside* the
parallel timing: it is real engine overhead.

The benchmark also runs the same campaign with observability tracing
enabled (``repro.obs``) and proves the tracing contract: bit-identical
results and bounded overhead (``trace_overhead`` in the summary; the
instrumentation's disabled path is a no-op call per whole-program run,
and its enabled path must stay within a few percent).  With
``--trace-dir`` the traced run also writes its JSONL run manifest there.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.fi import (
    CampaignConfig, InjectorSpec, resolve_jobs, run_parallel_campaign,
    shutdown_pool,
)
from repro.fi.engine import injector_for_spec
from repro.fi.campaign import prepare_campaign


def measure(spec: InjectorSpec, category: str, config: CampaignConfig,
            jobs: int) -> dict:
    t0 = time.perf_counter()
    result = run_parallel_campaign(spec, category, config, jobs=jobs)
    seconds = time.perf_counter() - t0
    runs = result.activated + result.not_activated
    return {
        "jobs": jobs,
        "traced": config.tracing,
        "seconds": round(seconds, 4),
        "trials": result.trials,
        "injection_runs": runs,
        "trials_per_sec": round(result.trials / seconds, 3),
        "runs_per_sec": round(runs / seconds, 3),
        "counts": {o.value: n for o, n in result.counts.items()},
        "not_activated": result.not_activated,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="libquantumm")
    parser.add_argument("--tool", choices=("LLFI", "PINFI"), default="LLFI")
    parser.add_argument("--category", default="all")
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="parallel job count to compare against jobs=1")
    parser.add_argument("--output", default="BENCH_campaign.json")
    parser.add_argument("--trace-dir", default=None,
                        help="write the traced run's JSONL manifest here")
    args = parser.parse_args()

    jobs = resolve_jobs(args.jobs)
    spec = InjectorSpec(args.workload, args.tool)
    config = CampaignConfig(trials=args.trials, seed=args.seed)
    traced_config = CampaignConfig(trials=args.trials, seed=args.seed,
                                   trace=True, trace_dir=args.trace_dir)

    # Warm build + golden + profiling so both timings measure trials only.
    injector = injector_for_spec(spec)
    executions_before = injector.executions
    prepare_campaign(injector, args.category, config)
    prep_executions = injector.executions - executions_before

    serial = measure(spec, args.category, config, jobs=1)
    traced = measure(spec, args.category, traced_config, jobs=1)
    parallel = measure(spec, args.category, config, jobs=jobs)
    shutdown_pool()

    identical = all(
        m["counts"] == serial["counts"]
        and m["not_activated"] == serial["not_activated"]
        for m in (traced, parallel))
    summary = {
        "benchmark": "campaign_throughput",
        "workload": args.workload,
        "tool": args.tool,
        "category": args.category,
        "trials": args.trials,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "traced": traced,
        "parallel": parallel,
        "speedup": round(serial["seconds"] / parallel["seconds"], 3),
        # Enabled-tracing cost relative to the untraced serial run; the
        # tracing contract keeps this within a few percent.
        "trace_overhead": round(
            traced["seconds"] / serial["seconds"] - 1.0, 4),
        "identical_results": identical,
        # golden + one shared profiling pass, amortised over every campaign
        # on this injector (previously 2 extra whole-program runs per cell).
        "prep_executions": prep_executions,
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1)
        f.write("\n")
    print(json.dumps(summary, indent=1))
    print(f"(written to {args.output})")
    if not identical:
        raise SystemExit("determinism violation: traced / jobs=1 / "
                         f"jobs={jobs} results differ")


if __name__ == "__main__":
    main()
