"""Campaign-engine throughput: trials/sec at jobs=1 vs jobs=N.

    PYTHONPATH=src python benchmarks/bench_campaign.py --trials 64 --jobs 4

Measures one (workload, tool, category) campaign through the parallel
engine at both job counts, checks the results are bit-identical (the
engine's determinism contract), and writes a machine-readable summary
(default ``BENCH_campaign.json``) so the perf trajectory of the campaign
hot path can be tracked across PRs.

Injector build, golden run and profiling pass are warmed outside the timed
region — the benchmark isolates trial throughput, which is what dominates
paper-scale (1000-trial) campaigns.  Pool startup is left *inside* the
parallel timing: it is real engine overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.fi import (
    CampaignConfig, InjectorSpec, resolve_jobs, run_parallel_campaign,
    shutdown_pool,
)
from repro.fi.engine import injector_for_spec
from repro.fi.campaign import prepare_campaign


def measure(spec: InjectorSpec, category: str, config: CampaignConfig,
            jobs: int) -> dict:
    t0 = time.perf_counter()
    result = run_parallel_campaign(spec, category, config, jobs=jobs)
    seconds = time.perf_counter() - t0
    runs = result.activated + result.not_activated
    return {
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "trials": result.trials,
        "injection_runs": runs,
        "trials_per_sec": round(result.trials / seconds, 3),
        "runs_per_sec": round(runs / seconds, 3),
        "counts": {o.value: n for o, n in result.counts.items()},
        "not_activated": result.not_activated,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="libquantumm")
    parser.add_argument("--tool", choices=("LLFI", "PINFI"), default="LLFI")
    parser.add_argument("--category", default="all")
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="parallel job count to compare against jobs=1")
    parser.add_argument("--output", default="BENCH_campaign.json")
    args = parser.parse_args()

    jobs = resolve_jobs(args.jobs)
    spec = InjectorSpec(args.workload, args.tool)
    config = CampaignConfig(trials=args.trials, seed=args.seed)

    # Warm build + golden + profiling so both timings measure trials only.
    injector = injector_for_spec(spec)
    executions_before = injector.executions
    prepare_campaign(injector, args.category, config)
    prep_executions = injector.executions - executions_before

    serial = measure(spec, args.category, config, jobs=1)
    parallel = measure(spec, args.category, config, jobs=jobs)
    shutdown_pool()

    identical = (serial["counts"] == parallel["counts"]
                 and serial["not_activated"] == parallel["not_activated"])
    summary = {
        "benchmark": "campaign_throughput",
        "workload": args.workload,
        "tool": args.tool,
        "category": args.category,
        "trials": args.trials,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "parallel": parallel,
        "speedup": round(serial["seconds"] / parallel["seconds"], 3),
        "identical_results": identical,
        # golden + one shared profiling pass, amortised over every campaign
        # on this injector (previously 2 extra whole-program runs per cell).
        "prep_executions": prep_executions,
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1)
        f.write("\n")
    print(json.dumps(summary, indent=1))
    print(f"(written to {args.output})")
    if not identical:
        raise SystemExit("determinism violation: jobs=1 and "
                         f"jobs={jobs} results differ")


if __name__ == "__main__":
    main()
