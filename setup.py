"""Shim for environments without the `wheel` package (offline editable
installs fall back to `setup.py develop`). Configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
